// Columnar binary session traces ("btrace"): the full-population sibling of
// the JSONL trace (obs/trace.hpp).
//
// JSONL is practical at --trace-sample 64; at --trace-sample 1 a
// multi-million-session run produces tens of GB of text and the serializer
// dominates runtime. The btrace container stores the same per-session event
// stream as column blocks -- one self-contained block per session, each
// field of each event kind stored contiguously and delta + zigzag-varint
// coded -- behind the same collector single-writer fold, so every PR 3/PR 4
// invariant carries over: byte-identical files at any --threads value,
// deterministic 1-in-N sampling plus anomaly capture, fault events and
// stall attribution, zero steady-state allocations per session.
//
// The binary file is not a new schema, it is a *compression* of the JSONL
// one: `bba_trace cat run.btrace` re-emits the exact bytes the JSONL sink
// would have written for the same run. That round trip is exact because the
// sink stores precisely what the JSONL serializer would have printed --
// already-quantized microsecond integers for the fast-path numbers, raw
// doubles for the %.10g escapes and header fields -- and the decoder prints
// them through the same shared emitters (obs/trace_jsonl.hpp).
//
// Container layout (full byte-level description in docs/file_formats.md):
//
//   [16-byte file header]  "BBATRACE", u32 version, u32 reserved
//   [session block]*       u32 block magic, u32 payload length,
//                          u32 CRC32(payload), payload (columns)
//   [footer]               u32 footer magic, group table + session index:
//                          (day, window, session, group) -> block offset
//   [20-byte trailer]      u32 CRC32(footer), u64 footer length, "BBATRIDX"
//
// The trailer is fixed-size and lands at EOF, so a reader finds the index
// with one seek and reaches any session in O(1) -- `bba_session
// --repro-trace run.btrace --repro-pick N` replays without scanning. Every
// payload carries its own CRC; truncation or corruption is detected, never
// silently decoded.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace bba::obs {

inline constexpr char kBtraceMagic[8] = {'B', 'B', 'A', 'T',
                                         'R', 'A', 'C', 'E'};
inline constexpr char kBtraceTrailerMagic[8] = {'B', 'B', 'A', 'T',
                                                'R', 'I', 'D', 'X'};
inline constexpr std::uint32_t kBtraceVersion = 1;
inline constexpr std::uint32_t kBtraceBlockMagic = 0x4b4c4253;   // "SBLK"
inline constexpr std::uint32_t kBtraceFooterMagic = 0x58444953;  // "SIDX"
inline constexpr std::size_t kBtraceFileHeaderSize = 16;
inline constexpr std::size_t kBtraceBlockFramingSize = 12;
inline constexpr std::size_t kBtraceTrailerSize = 20;

/// One session in the footer index: coordinates and flags for selection,
/// offset/length for O(1) block access.
struct BtraceEntry {
  std::uint64_t seed = 0, day = 0, window = 0, session = 0;
  std::uint32_t group_id = 0;
  bool sampled = false;
  bool anomaly = false;
  std::uint64_t offset = 0;  ///< file offset of the block's framing magic
  std::uint64_t length = 0;  ///< whole block, framing included
};

/// SessionTraceSink that serializes the buffered session as one btrace
/// block instead of JSONL lines. The event *order* inside the block is the
/// JSONL line order (same walk_session_lines merge, recorded as a tag
/// stream), so decoding is a replay, not a re-derivation.
class BinaryTraceSink final : public SessionTraceSink {
 public:
  bool finish(std::string* out) const override;

 private:
  // Reused per-finish scratch (capacity kept across sessions, so a warm
  // sink serializes with zero heap allocations).
  mutable std::string payload_;
  mutable std::vector<std::uint8_t> tags_;
  mutable std::vector<std::uint64_t> off_k_, sw_k_, sw_from_, sw_to_, st_k_,
      colbuf_u64_;
  mutable std::vector<double> off_start_, off_wait_, sw_t_, st_start_,
      st_dur_, colbuf_;
  mutable std::vector<std::uint8_t> st_fault_;
};

/// TraceCollector writing the btrace container. `write()` still appends
/// opaque pre-serialized bytes from the single-writer fold -- the collector
/// additionally parses each block's coordinate prefix to grow the footer
/// index, and `finalize()` (idempotent; the destructor calls it) appends
/// the footer + trailer.
class BinaryTraceCollector final : public TraceCollector {
 public:
  explicit BinaryTraceCollector(TraceConfig cfg);
  ~BinaryTraceCollector() override;

  const char* format_name() const override { return "btrace"; }
  std::unique_ptr<SessionTraceSink> make_sink() const override;

  /// Appends one or more complete blocks (a task's sessions arrive
  /// concatenated) and indexes each.
  void write(const std::string& blocks) override;

  /// Writes the footer index and trailer. Safe to call more than once;
  /// write() must not be called afterwards.
  void finalize() override;

  /// TraceCollector::resume_from plus index recovery: after truncating to
  /// the checkpointed offset, the file's blocks are rescanned (the
  /// open_scan path) to rebuild the interned group table and footer
  /// entries the interrupted collector held in memory, in the same order.
  bool resume_from(const TraceResumeState& st, std::string* error) override;

  std::size_t indexed_sessions() const { return entries_.size(); }

 private:
  std::vector<BtraceEntry> entries_;
  std::vector<std::string> groups_;  // interned; group_id indexes this
  std::uint64_t offset_ = 0;         // next block's file offset
  bool finalized_ = false;
};

/// Reads a btrace file: footer-index open (one seek, O(1) session access)
/// or a linear block scan that ignores the footer (recovery of truncated
/// files, and the cross-check that index and blocks agree).
class BtraceReader {
 public:
  BtraceReader() = default;
  ~BtraceReader();
  BtraceReader(const BtraceReader&) = delete;
  BtraceReader& operator=(const BtraceReader&) = delete;

  /// True when the file starts with the btrace magic (cheap format sniff
  /// for CLI dispatch; does not validate anything else).
  static bool sniff(const std::string& path);

  /// Opens via the trailer + footer index. On failure returns false and
  /// sets *error (bad magic, bad version, missing/corrupt footer).
  bool open(const std::string& path, std::string* error);

  /// Opens by scanning block framings front-to-back, rebuilding the index
  /// from each block's coordinate prefix; the footer (if any) is ignored.
  bool open_scan(const std::string& path, std::string* error);

  std::uint32_t version() const { return version_; }
  std::size_t session_count() const { return entries_.size(); }
  const BtraceEntry& entry(std::size_t i) const { return entries_[i]; }
  const std::string& group_name(std::uint32_t id) const {
    return groups_[id];
  }
  const std::vector<std::string>& groups() const { return groups_; }

  /// Per-session event tallies filled by read_session.
  struct SessionCounts {
    std::uint64_t chunks = 0, stalls = 0, offs = 0, switches = 0,
                  faults = 0;
  };

  /// Decodes session i and appends its JSONL serialization (header line +
  /// event lines, byte-identical to the JSONL sink) to *jsonl_out (may be
  /// null to just validate). Verifies the block CRC; returns false and
  /// sets *error on any corruption.
  bool read_session(std::size_t i, std::string* jsonl_out,
                    SessionCounts* counts, std::string* error);

 private:
  bool open_file(const std::string& path, std::string* error);
  std::uint32_t intern_group(const std::string& name);

  std::FILE* file_ = nullptr;
  std::uint64_t file_size_ = 0;
  std::uint32_t version_ = 0;
  std::vector<BtraceEntry> entries_;
  std::vector<std::string> groups_;
  std::string blockbuf_;  // reused block read buffer
};

}  // namespace bba::obs
