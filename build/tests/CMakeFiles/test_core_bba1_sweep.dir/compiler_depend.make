# Empty compiler generated dependencies file for test_core_bba1_sweep.
# This may be replaced when dependencies are built.
