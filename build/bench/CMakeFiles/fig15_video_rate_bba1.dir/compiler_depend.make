# Empty compiler generated dependencies file for fig15_video_rate_bba1.
# This may be replaced when dependencies are built.
