// Chunk maps (Sec. 5.2, Fig. 13).
//
// Under VBR the buffer dynamics depend on the byte size of the upcoming
// chunk, not the nominal rate, so the design space generalizes from the
// buffer-rate plane to the buffer-chunk plane: a chunk map gives the
// maximally allowable chunk size for the current buffer occupancy, between
// Chunk_min (average chunk size at R_min) and Chunk_max (average at R_max).
#pragma once

namespace bba::core {

/// Piecewise-linear chunk map: Chunk_min up to the reservoir, linear ramp
/// across the cushion, Chunk_max beyond it.
class ChunkMap {
 public:
  /// `upper_knee_s` is the buffer level where the map first allows
  /// Chunk_max (90% of the buffer in the paper's deployment).
  /// Requires 0 <= reservoir < upper_knee and 0 < chunk_min < chunk_max.
  ChunkMap(double reservoir_s, double upper_knee_s, double chunk_min_bits,
           double chunk_max_bits);

  /// Maximally allowable chunk size at buffer level `buffer_s`.
  double max_chunk_bits(double buffer_s) const;

  double reservoir_s() const { return reservoir_s_; }
  double upper_knee_s() const { return upper_knee_s_; }
  double cushion_s() const { return upper_knee_s_ - reservoir_s_; }
  double chunk_min_bits() const { return chunk_min_bits_; }
  double chunk_max_bits() const { return chunk_max_bits_; }

 private:
  double reservoir_s_;
  double upper_knee_s_;
  double chunk_min_bits_;
  double chunk_max_bits_;
};

}  // namespace bba::core
