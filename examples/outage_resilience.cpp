// Outage protection (Sec. 7.1): how the BBA family rides out temporary
// network outages.
//
//   $ ./build/examples/outage_resilience
//
// Temporary outages of 20-45 s (DSL retrains, WiFi interference) drop
// capacity below R_min, where no ABR can avoid draining the buffer -- the
// question is whether the buffer is deep enough to bridge the gap. On a
// capacity-limited link the buffer never reaches the 240 s cap, so the
// extra right-shift of the chunk map from outage protection decides
// whether a 40 s outage is survivable. This example streams the same
// outage-ridden sessions with protection off and on and compares stalls.
#include <cstdio>

#include "core/bba1.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;

  constexpr int kSessions = 30;

  double stalls[2] = {0.0, 0.0};
  double stall_s[2] = {0.0, 0.0};
  double rate[2] = {0.0, 0.0};
  double hours = 0.0;

  for (int i = 0; i < kSessions; ++i) {
    // A capacity-limited link (~1.6 Mb/s) with a 30-45 s outage roughly
    // every three minutes. Same network and title for both variants.
    util::Rng rng = util::Rng(2024).fork(static_cast<unsigned>(i));
    net::MarkovTraceConfig net_cfg;
    net_cfg.median_bps = util::mbps(1.6);
    net_cfg.sigma_log = 0.7;
    net_cfg.min_bps = util::kbps(100);
    net::OutageConfig outage_cfg;
    outage_cfg.mean_interval_s = 180.0;
    outage_cfg.min_outage_s = 30.0;
    outage_cfg.max_outage_s = 45.0;
    const net::CapacityTrace trace = net::with_outages(
        net::make_markov_trace(net_cfg, rng), outage_cfg, rng);
    const media::Video video = media::make_vbr_video(
        "outage-title", media::EncodingLadder::netflix_2013(), 900, 4.0,
        media::VbrConfig{}, rng);

    sim::PlayerConfig player;
    player.watch_duration_s = util::minutes(40);

    for (int variant = 0; variant < 2; ++variant) {
      core::Bba1Config cfg;
      cfg.outage_protection = variant == 1;
      core::Bba1 abr(cfg);
      const sim::SessionMetrics m = sim::compute_metrics(
          sim::simulate_session(video, trace, abr, player));
      stalls[variant] += static_cast<double>(m.rebuffer_count);
      stall_s[variant] += m.rebuffer_s;
      rate[variant] += m.avg_rate_bps * m.play_s;
      if (variant == 0) hours += m.play_s / 3600.0;
    }
  }

  std::printf("%d sessions on an outage-ridden 1.6 Mb/s link:\n\n",
              kSessions);
  std::printf("%-26s %-14s %-14s %-10s\n", "BBA-1 variant",
              "rebuffers/hr", "stall s/hr", "avg kb/s");
  const char* names[2] = {"protection off", "protection on (Sec 7.1)"};
  for (int variant = 0; variant < 2; ++variant) {
    std::printf("%-26s %-14.2f %-14.1f %-10.0f\n", names[variant],
                stalls[variant] / hours, stall_s[variant] / hours,
                util::to_kbps(rate[variant] / (hours * 3600.0)));
  }
  std::printf(
      "\nWith outage protection the chunk map right-shifts by 400 ms per\n"
      "downloaded chunk (up to 80 s), so the buffer converges higher and\n"
      "30-45 s outages are bridged with fewer stalls, at a small cost in\n"
      "video rate.\n");
  return 0;
}
