// Property sweeps: structural invariants of the player that must hold for
// EVERY algorithm on EVERY trace -- randomized over seeds, checked for all
// algorithms in the library.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "abr/related_work.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/population.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba {
namespace {

std::unique_ptr<abr::RateAdaptation> make(const std::string& name) {
  if (name == "bba0") return std::make_unique<core::Bba0>();
  if (name == "bba1") return std::make_unique<core::Bba1>();
  if (name == "bba2") return std::make_unique<core::Bba2>();
  if (name == "bba_others") return std::make_unique<core::BbaOthers>();
  if (name == "control") return std::make_unique<abr::ControlAbr>();
  if (name == "pid") return std::make_unique<abr::PidAbr>();
  if (name == "elastic") return std::make_unique<abr::ElasticAbr>();
  if (name == "rmax") return std::make_unique<abr::RMaxAlways>();
  return std::make_unique<abr::RMinAlways>();
}

class PlayerInvariants
    : public testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(PlayerInvariants, HoldOnRandomizedSessions) {
  const auto [name, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 977 + 13);

  // A random environment drawn from the experiment population, plus a
  // random title (VBR or CBR).
  const exp::Population population;
  const std::size_t window = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(exp::kWindowsPerDay) - 1));
  const exp::UserEnvironment env = population.sample_environment(window, rng);
  const net::CapacityTrace trace = population.make_trace(env, rng);
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const media::Video& video = lib.pick(rng);

  sim::PlayerConfig cfg;
  cfg.watch_duration_s = rng.uniform(180.0, 2400.0);
  cfg.max_wall_s = 4.0 * 3600.0;  // generous dead-network guard

  auto algorithm = make(name);
  const sim::SessionResult r =
      sim::simulate_session(video, trace, *algorithm, cfg);

  const double V = video.chunk_duration_s();
  const double watch_limit =
      std::min(cfg.watch_duration_s, video.duration_s());

  // Play accounting.
  EXPECT_LE(r.played_s, watch_limit + 1e-6);
  if (!r.abandoned) {
    EXPECT_NEAR(r.played_s, watch_limit, 1e-6);
  }
  EXPECT_GE(r.wall_s, r.played_s - 1e-6);

  // Chunk log invariants.
  double prev_finish = 0.0;
  std::size_t prev_index = 0;
  bool first = true;
  for (const auto& c : r.chunks) {
    EXPECT_LT(c.rate_index, video.ladder().size());
    EXPECT_DOUBLE_EQ(c.rate_bps, video.ladder().rate_bps(c.rate_index));
    EXPECT_DOUBLE_EQ(c.size_bits,
                     video.chunks().size_bits(c.rate_index, c.index));
    EXPECT_GT(c.download_s, 0.0);
    EXPECT_NEAR(c.finish_s - c.request_s, c.download_s, 1e-9);
    EXPECT_GT(c.throughput_bps, 0.0);
    EXPECT_GE(c.buffer_after_s, 0.0);
    EXPECT_LE(c.buffer_after_s, cfg.buffer_capacity_s + 1e-9);
    EXPECT_GE(c.off_wait_s, 0.0);
    if (!first) {
      EXPECT_EQ(c.index, prev_index + 1);       // sequential, no skips
      EXPECT_GE(c.request_s, prev_finish - 1e-9);  // no overlap
    }
    prev_finish = c.finish_s;
    prev_index = c.index;
    first = false;
  }

  // Rebuffer invariants.
  double total_stall = 0.0;
  for (const auto& rb : r.rebuffers) {
    EXPECT_GT(rb.duration_s, -1e-9);
    EXPECT_GE(rb.start_s, r.join_s - 1e-9);  // no stalls before playback
    EXPECT_LE(rb.start_s + rb.duration_s, r.wall_s + 1e-6);
    total_stall += rb.duration_s;
  }
  // Wall = join + played + stalls + trailing idle; at minimum:
  EXPECT_GE(r.wall_s + 1e-6, r.join_s + r.played_s * 0.0 + total_stall);

  // Metrics are finite and self-consistent.
  const sim::SessionMetrics m = sim::compute_metrics(r);
  EXPECT_TRUE(std::isfinite(m.avg_rate_bps));
  if (m.play_s > 0.0 && !r.chunks.empty()) {
    EXPECT_GE(m.avg_rate_bps, video.ladder().rmin_bps() - 1e-6);
    EXPECT_LE(m.avg_rate_bps, video.ladder().rmax_bps() + 1e-6);
  }
  EXPECT_EQ(m.rebuffer_count,
            static_cast<long long>(r.rebuffers.size()));
  EXPECT_LE(m.switch_count,
            static_cast<long long>(r.chunks.empty() ? 0
                                                    : r.chunks.size() - 1));
  (void)V;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, PlayerInvariants,
    testing::Combine(testing::Values("bba0", "bba1", "bba2", "bba_others",
                                     "control", "pid", "elastic", "rmin",
                                     "rmax"),
                     testing::Range(0, 6)),
    [](const testing::TestParamInfo<PlayerInvariants::ParamType>& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace bba
