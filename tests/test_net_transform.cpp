// Tests for trace transforms.
#include <gtest/gtest.h>

#include "net/trace_transform.hpp"
#include "util/units.hpp"

namespace bba::net {
namespace {

using util::mbps;

CapacityTrace base() {
  return CapacityTrace({{10.0, 100.0}, {5.0, 400.0}, {5.0, 50.0}});
}

TEST(Transform, ScaleRate) {
  const CapacityTrace t = scale_rate(base(), 2.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), 200.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(12.0), 800.0);
  EXPECT_DOUBLE_EQ(t.cycle_duration_s(), 20.0);  // durations untouched
}

TEST(Transform, ScaleTime) {
  const CapacityTrace t = scale_time(base(), 3.0);
  EXPECT_DOUBLE_EQ(t.cycle_duration_s(), 60.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(29.0), 100.0);  // first segment now 30 s
  EXPECT_DOUBLE_EQ(t.rate_at_bps(31.0), 400.0);
}

TEST(Transform, ClampRate) {
  const CapacityTrace t = clamp_rate(base(), 80.0, 300.0);
  EXPECT_DOUBLE_EQ(t.min_rate_bps(), 80.0);
  EXPECT_DOUBLE_EQ(t.max_rate_bps(), 300.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), 100.0);  // in range: unchanged
}

// Regression: clamping with a positive floor used to erase outages -- a
// zero-rate segment was lifted to floor_bps, turning a dead link into a
// slow one. Exact zeros are outages and must survive the clamp.
TEST(Transform, ClampRatePreservesExactZeroOutages) {
  const CapacityTrace with_outage(
      {{10.0, 100.0}, {20.0, 0.0}, {10.0, 400.0}});
  const CapacityTrace t = clamp_rate(with_outage, 80.0, 300.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(15.0), 0.0);  // outage untouched
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), 100.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(35.0), 300.0);  // clamp still applies
  // The outage window delivers no bits at all.
  EXPECT_DOUBLE_EQ(t.bits_between(10.0, 30.0), 0.0);
  // Near-zero (but nonzero) rates are genuine slow links: still clamped.
  const CapacityTrace slow({{10.0, 1e-6}});
  EXPECT_DOUBLE_EQ(clamp_rate(slow, 80.0, 300.0).rate_at_bps(5.0), 80.0);
}

TEST(Transform, SkipStartWithinFirstSegment) {
  const CapacityTrace t = skip_start(base(), 4.0);
  EXPECT_DOUBLE_EQ(t.cycle_duration_s(), 16.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), 100.0);  // 6 s of segment 1 left
  EXPECT_DOUBLE_EQ(t.rate_at_bps(7.0), 400.0);
}

TEST(Transform, SkipStartAcrossSegments) {
  const CapacityTrace t = skip_start(base(), 12.0);
  EXPECT_DOUBLE_EQ(t.cycle_duration_s(), 8.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), 400.0);  // 3 s of segment 2 left
  EXPECT_DOUBLE_EQ(t.rate_at_bps(4.0), 50.0);
}

TEST(Transform, SkipZeroIsIdentity) {
  const CapacityTrace t = skip_start(base(), 0.0);
  EXPECT_DOUBLE_EQ(t.cycle_duration_s(), base().cycle_duration_s());
}

TEST(Transform, Concat) {
  const CapacityTrace t =
      concat(CapacityTrace::constant(mbps(1)), base());
  EXPECT_DOUBLE_EQ(t.cycle_duration_s(), 1.0 + 20.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.5), mbps(1));
  EXPECT_DOUBLE_EQ(t.rate_at_bps(1.5), 100.0);
}

TEST(Transform, ComposedPipeline) {
  // scale down 2x then clamp: verify integration stays consistent.
  const CapacityTrace t = clamp_rate(scale_rate(base(), 0.5), 40.0, 150.0);
  // Rates become 50, 150 (clamped from 200), 40 (clamped from 25).
  EXPECT_DOUBLE_EQ(t.rate_at_bps(0.0), 50.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(12.0), 150.0);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(17.0), 40.0);
  EXPECT_DOUBLE_EQ(t.bits_between(0.0, 20.0),
                   50.0 * 10 + 150.0 * 5 + 40.0 * 5);
}

}  // namespace
}  // namespace bba::net
