file(REMOVE_RECURSE
  "CMakeFiles/fig07_rebuffer_bba0.dir/fig07_rebuffer_bba0.cpp.o"
  "CMakeFiles/fig07_rebuffer_bba0.dir/fig07_rebuffer_bba0.cpp.o.d"
  "fig07_rebuffer_bba0"
  "fig07_rebuffer_bba0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_rebuffer_bba0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
