file(REMOVE_RECURSE
  "CMakeFiles/fig24_rebuffer_others.dir/fig24_rebuffer_others.cpp.o"
  "CMakeFiles/fig24_rebuffer_others.dir/fig24_rebuffer_others.cpp.o.d"
  "fig24_rebuffer_others"
  "fig24_rebuffer_others.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_rebuffer_others.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
