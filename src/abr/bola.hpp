// BOLA: a later buffer-based algorithm, included as a forward-looking
// comparison point.
//
// Spiteri, Urgaonkar, Sitaraman, "BOLA: Near-Optimal Bitrate Adaptation
// for Online Videos" (INFOCOM 2016) formalized the buffer-based idea this
// paper pioneered as Lyapunov drift-plus-penalty optimization: each chunk,
// pick the rendition m maximizing
//
//     (V * (utility_m + gamma*p) - Q) / S_m
//
// where Q is the buffer in chunks, S_m the chunk size, utility_m =
// ln(S_m / S_min), and V, gamma*p are derived from the buffer target. The
// result is again a monotone buffer-to-rate map -- independent support for
// the paper's thesis. This is BOLA-BASIC on nominal chunk sizes.
#pragma once

#include "abr/abr.hpp"

namespace bba::abr {

/// BOLA-BASIC tuning.
struct BolaConfig {
  /// Buffer level (seconds) at which the top rendition becomes optimal.
  /// Together with `min_threshold_s` this determines V and gamma*p.
  double max_threshold_s = 216.0;

  /// Buffer level at which the lowest rendition is chosen.
  double min_threshold_s = 12.0;
};

class BolaAbr final : public RateAdaptation {
 public:
  explicit BolaAbr(BolaConfig cfg = {});

  std::size_t choose_rate(const Observation& obs) override;
  std::string name() const override { return "bola"; }

  /// The drift-plus-penalty objective for rendition `m` at buffer level
  /// `buffer_s` (exposed for tests): higher is better; negative for every
  /// m means "do not download yet" and maps to holding at R_min here.
  double objective(const Observation& obs, std::size_t m) const;

 private:
  BolaConfig cfg_;
};

}  // namespace bba::abr
