# Empty dependencies file for fig01_throughput_variability.
# This may be replaced when dependencies are built.
