// Deterministic, mergeable quantile sketch (fixed log-bucket, DDSketch
// style) for fleet telemetry distributions: video rate, startup delay,
// buffer occupancy.
//
// Design constraints, in order:
//   * Mergeable and EXACT under merge: bucket counts are u64 and merge is
//     integer addition, so combining per-shard sketches reproduces the
//     single-run sketch bit for bit, in any association or order. This is
//     the property the ROADMAP checkpoint/resume + sharding item needs.
//   * Deterministic: bucket assignment reads the raw IEEE-754 bit pattern
//     (no libm on the insert path, mirroring obs::HistSlot::bucket_of), and
//     quantile() uses a nearest-rank rule -- a pure function of (q, counts).
//   * Bounded relative error: buckets subdivide each power-of-two octave
//     into 32 geometric-ish steps using the top 5 mantissa bits, so a
//     bucket spans [lo, hi) with hi/lo <= 33/32. quantile() returns the
//     arithmetic midpoint (exactly representable: lo and hi need only 5
//     mantissa bits), giving |est - x| / x <= (hi-lo)/(2*lo) <= 1/64
//     (~1.6%) for any in-range value x in the bucket.
//
// Values <= 0 (and NaN) land in a dedicated zero bucket and report as 0.0;
// values outside [2^kMinExp, 2^(kMaxExp+1)) clamp to the end buckets, where
// the relative-error bound does not apply. The default range spans ~5e-10
// .. ~5.6e14, comfortably covering seconds-scale delays and bits-per-second
// rates.
//
// Header-only on purpose: obs (which links only bba_util) embeds sketches
// in its timeline aggregator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace bba::stats {

class QuantileSketch {
 public:
  static constexpr int kSubBits = 5;               ///< mantissa bits per octave
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kMinExp = -31;              ///< lowest octave, 2^-31
  static constexpr int kMaxExp = 48;               ///< highest octave, 2^48
  static constexpr int kBuckets = (kMaxExp - kMinExp + 1) * kSubBuckets;

  /// Bucket index for v > 0 via the raw exponent + top mantissa bits.
  /// Out-of-range values clamp to the end buckets; subnormals clamp to 0.
  static int bucket_of(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
    const int sub =
        static_cast<int>((bits >> (52 - kSubBits)) & (kSubBuckets - 1));
    const int idx = (exp - kMinExp) * kSubBuckets + sub;
    if (idx < 0) return 0;
    if (idx >= kBuckets) return kBuckets - 1;
    return idx;
  }

  /// Bucket bounds: bucket b covers [lo, hi) = 2^e * [1 + j/32, 1 + (j+1)/32)
  /// with e = kMinExp + b/32, j = b%32. Cold path only (rendering).
  static double bucket_lo(int b) {
    const int exp = kMinExp + b / kSubBuckets;
    const int sub = b % kSubBuckets;
    return pow2(exp) * (1.0 + static_cast<double>(sub) / kSubBuckets);
  }
  static double bucket_hi(int b) {
    const int exp = kMinExp + b / kSubBuckets;
    const int sub = b % kSubBuckets;
    return pow2(exp) * (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
  }
  /// The representative reported by quantile(): the arithmetic midpoint,
  /// exactly representable since lo and hi carry only kSubBits+1 mantissa
  /// bits.
  static double bucket_mid(int b) {
    return 0.5 * (bucket_lo(b) + bucket_hi(b));
  }

  /// Records `n` occurrences of `v`. Non-positive (and NaN) values count
  /// in the zero bucket. Never allocates.
  void add(double v, std::uint64_t n = 1) {
    if (v > 0.0) {
      buckets_[bucket_of(v)] += n;
    } else {
      zero_ += n;
    }
    count_ += n;
  }

  /// Deserialization hooks (bba_obs rebuilds sketches from the artifact):
  /// add raw counts directly to a bucket / the zero bucket.
  void add_bucket(int b, std::uint64_t n) {
    if (b < 0) b = 0;
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b] += n;
    count_ += n;
  }
  void add_zero(std::uint64_t n) {
    zero_ += n;
    count_ += n;
  }

  /// Integer-exact merge: associative, commutative, and equal to having
  /// added the other sketch's values here.
  void merge(const QuantileSketch& other) {
    zero_ += other.zero_;
    count_ += other.count_;
    for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t zero_count() const { return zero_; }
  std::uint64_t bucket_count(int b) const { return buckets_[b]; }

  /// Nearest-rank quantile: the representative of the order statistic at
  /// 0-based rank round(q * (count-1)). Deterministic; 0.0 for an empty
  /// sketch or when the rank falls in the zero bucket. For in-range
  /// positive values the estimate is within 1/64 relative error of the
  /// true order statistic.
  double quantile(double q) const {
    if (count_ == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1) + 0.5);
    if (rank < zero_) return 0.0;
    std::uint64_t cum = zero_;
    int last_occupied = -1;
    for (int b = 0; b < kBuckets; ++b) {
      cum += buckets_[b];
      if (buckets_[b] != 0) last_occupied = b;
      if (rank < cum) return bucket_mid(b);
    }
    // Rounding can push the rank past every occupied bucket: for count_ >=
    // 2^53, (double)(count_ - 1) + 0.5 may round up to count_ itself, so
    // `rank < cum` never fires. Report the highest occupied bucket -- never
    // bucket_mid(kBuckets - 1), the top of the whole ~5.6e14 range, which
    // the sketch may not contain at all.
    if (last_occupied >= 0) return bucket_mid(last_occupied);
    return 0.0;  // all mass in the zero bucket
  }

  /// Appends the sketch state as JSON members (no surrounding braces):
  /// `"zero":Z,"count":N,"buckets":[[b,c],...]` with buckets in ascending
  /// index order, empty buckets omitted. All integers: byte-deterministic.
  void append_json(std::string& out) const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"zero\":%llu,\"count\":%llu,",
                  static_cast<unsigned long long>(zero_),
                  static_cast<unsigned long long>(count_));
    out += buf;
    out += "\"buckets\":[";
    bool first = true;
    for (int b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      std::snprintf(buf, sizeof buf, "%s[%d,%llu]", first ? "" : ",", b,
                    static_cast<unsigned long long>(buckets_[b]));
      out += buf;
      first = false;
    }
    out += ']';
  }

 private:
  /// 2^e for the bucket-bound helpers without pulling in <cmath>.
  static double pow2(int e) {
    const std::uint64_t bits = static_cast<std::uint64_t>(e + 1023) << 52;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t zero_ = 0;   ///< values <= 0 (or NaN)
  std::uint64_t count_ = 0;  ///< total observations, including zero_
};

}  // namespace bba::stats
