file(REMOVE_RECURSE
  "CMakeFiles/test_sim_shared.dir/test_sim_shared.cpp.o"
  "CMakeFiles/test_sim_shared.dir/test_sim_shared.cpp.o.d"
  "test_sim_shared"
  "test_sim_shared.pdb"
  "test_sim_shared[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
