// Tests for the shaped rate-map families and the generalized Algorithm 1.
#include <gtest/gtest.h>

#include <tuple>

#include "core/bba0.hpp"
#include "core/map_families.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

using util::kbps;
using util::mbps;

constexpr MapShape kAllShapes[] = {MapShape::kLinear, MapShape::kQuadratic,
                                   MapShape::kLogarithmic};

TEST(ShapedRateMap, AllFamiliesSatisfyTheDesignCriteria) {
  for (MapShape shape : kAllShapes) {
    const ShapedRateMap map(shape, 90.0, 126.0, kbps(235), kbps(5000));
    EXPECT_TRUE(map.satisfies_design_criteria()) << map_shape_name(shape);
  }
}

TEST(ShapedRateMap, PinnedEndsForEveryFamily) {
  for (MapShape shape : kAllShapes) {
    const ShapedRateMap map(shape, 50.0, 100.0, kbps(235), kbps(5000));
    EXPECT_DOUBLE_EQ(map.rate_at_bps(0.0), kbps(235));
    EXPECT_DOUBLE_EQ(map.rate_at_bps(50.0), kbps(235));
    EXPECT_DOUBLE_EQ(map.rate_at_bps(150.0), kbps(5000));
    EXPECT_DOUBLE_EQ(map.rate_at_bps(240.0), kbps(5000));
  }
}

TEST(ShapedRateMap, ShapesOrderAsDocumented) {
  // In the interior of the cushion: quadratic < linear < logarithmic.
  const ShapedRateMap lin(MapShape::kLinear, 90.0, 126.0, kbps(235),
                          kbps(5000));
  const ShapedRateMap quad(MapShape::kQuadratic, 90.0, 126.0, kbps(235),
                           kbps(5000));
  const ShapedRateMap log(MapShape::kLogarithmic, 90.0, 126.0, kbps(235),
                          kbps(5000));
  for (double b = 100.0; b < 210.0; b += 10.0) {
    EXPECT_LT(quad.rate_at_bps(b), lin.rate_at_bps(b)) << b;
    EXPECT_GT(log.rate_at_bps(b), lin.rate_at_bps(b)) << b;
  }
}

TEST(ShapedRateMap, LinearMatchesRateMap) {
  const ShapedRateMap shaped(MapShape::kLinear, 90.0, 126.0, kbps(235),
                             kbps(5000));
  const RateMap plain = RateMap::bba0_default(kbps(235), kbps(5000));
  for (double b = 0.0; b <= 240.0; b += 0.5) {
    EXPECT_NEAR(shaped.rate_at_bps(b), plain.rate_at_bps(b), 1e-9) << b;
  }
}

TEST(ShapedBba, LinearShapeReproducesBba0) {
  const media::Video video = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 100, 4.0);
  ShapedBba shaped(MapShape::kLinear);
  Bba0 stock;
  for (double b = 0.0; b <= 240.0; b += 1.0) {
    for (std::size_t prev = 0; prev < video.ladder().size(); ++prev) {
      abr::Observation obs;
      obs.chunk_index = 5;
      obs.buffer_s = b;
      obs.buffer_max_s = 240.0;
      obs.prev_rate_index = prev;
      obs.video = &video;
      ASSERT_EQ(shaped.choose_rate(obs), stock.choose_rate(obs))
          << "b=" << b << " prev=" << prev;
    }
  }
}

TEST(ShapedBba, QuadraticIsMoreConservativeMidCushion) {
  const media::Video video = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 100, 4.0);
  ShapedBba quad(MapShape::kQuadratic);
  ShapedBba log(MapShape::kLogarithmic);
  abr::Observation obs;
  obs.chunk_index = 5;
  obs.buffer_s = 150.0;
  obs.buffer_max_s = 240.0;
  obs.prev_rate_index = 0;
  obs.video = &video;
  EXPECT_LT(quad.choose_rate(obs), log.choose_rate(obs));
}

// The Sec. 3 theorem, end to end, for every family.
class ShapedNoRebuffer
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShapedNoRebuffer, HoldsOnRandomTraces) {
  const auto [shape_index, seed] = GetParam();
  const MapShape shape = kAllShapes[shape_index];
  const media::Video video = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 900, 4.0);
  util::Rng rng(static_cast<std::uint64_t>(seed) + 5000);
  net::MarkovTraceConfig cfg;
  cfg.median_bps = rng.uniform(2.0, 10.0) * video.ladder().rmin_bps();
  cfg.sigma_log = rng.uniform(0.3, 1.2);
  cfg.min_bps = 1.05 * video.ladder().rmin_bps();
  const net::CapacityTrace trace = net::make_markov_trace(cfg, rng);
  ShapedBba abr(shape);
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(45);
  const sim::SessionResult result =
      sim::simulate_session(video, trace, abr, player);
  EXPECT_TRUE(result.rebuffers.empty()) << map_shape_name(shape);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, ShapedNoRebuffer,
    testing::Combine(testing::Range(0, 3), testing::Range(0, 6)),
    [](const testing::TestParamInfo<ShapedNoRebuffer::ParamType>& info) {
      return std::string(map_shape_name(
                 kAllShapes[std::get<0>(info.param)])) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace bba::core
