# Empty compiler generated dependencies file for fig21_chunkmap_oscillation.
# This may be replaced when dependencies are built.
