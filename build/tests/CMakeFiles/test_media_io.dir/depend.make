# Empty dependencies file for test_media_io.
# This may be replaced when dependencies are built.
