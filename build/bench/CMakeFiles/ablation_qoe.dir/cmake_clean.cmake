file(REMOVE_RECURSE
  "CMakeFiles/ablation_qoe.dir/ablation_qoe.cpp.o"
  "CMakeFiles/ablation_qoe.dir/ablation_qoe.cpp.o.d"
  "ablation_qoe"
  "ablation_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
