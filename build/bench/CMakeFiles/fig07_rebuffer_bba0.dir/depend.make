# Empty dependencies file for fig07_rebuffer_bba0.
# This may be replaced when dependencies are built.
