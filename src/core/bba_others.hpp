// BBA-Others: BBA-2 plus the switch-rate smoothing of Sec. 7.
//
// Two mechanisms: (1) up-switches are only taken when they are sustainable
// for the lookahead window -- as many future chunks as the buffer currently
// holds, capped at 60 -- so a small chunk followed by big ones no longer
// triggers an up-then-down flap (Fig. 21); down-switches are never smoothed
// ("so as to avoid increasing the likelihood of rebuffering"). (2) The
// reservoir may only grow (the chunk map only right-shifts), with the
// excess doubling as outage protection (Secs. 7.1-7.2).
#pragma once

#include "core/bba2.hpp"

namespace bba::core {

/// Lookahead smoothing tuning.
struct BbaOthersConfig {
  Bba2Config base;

  /// Upper bound on the lookahead window (paper: 60 chunks when the 240 s
  /// buffer is full of 4 s chunks).
  std::size_t max_lookahead_chunks = 60;
};

/// The BBA-Others algorithm.
class BbaOthers final : public Bba2 {
 public:
  /// Constructs with monotone reservoir + outage protection enabled (the
  /// Sec. 7 defaults) unless overridden in `cfg`.
  explicit BbaOthers(BbaOthersConfig cfg = defaults());

  std::string name() const override { return "bba-others"; }

  /// The Sec. 7 default configuration: BBA-2 with monotone reservoir and
  /// outage protection.
  static BbaOthersConfig defaults();

  /// Lookahead window at the given buffer level: one chunk when empty, up
  /// to `max_lookahead_chunks` when full.
  std::size_t lookahead_chunks(double buffer_s,
                               double chunk_duration_s) const;

 protected:
  std::size_t filter_up_switch(const abr::Observation& obs,
                               std::size_t candidate, std::size_t prev,
                               double map_bits) override;

 private:
  BbaOthersConfig cfg3_;
};

}  // namespace bba::core
