file(REMOVE_RECURSE
  "CMakeFiles/bba_exp.dir/abtest.cpp.o"
  "CMakeFiles/bba_exp.dir/abtest.cpp.o.d"
  "CMakeFiles/bba_exp.dir/dump.cpp.o"
  "CMakeFiles/bba_exp.dir/dump.cpp.o.d"
  "CMakeFiles/bba_exp.dir/population.cpp.o"
  "CMakeFiles/bba_exp.dir/population.cpp.o.d"
  "CMakeFiles/bba_exp.dir/report.cpp.o"
  "CMakeFiles/bba_exp.dir/report.cpp.o.d"
  "CMakeFiles/bba_exp.dir/workload.cpp.o"
  "CMakeFiles/bba_exp.dir/workload.cpp.o.d"
  "libbba_exp.a"
  "libbba_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
