// Welch's two-sample t-test.
//
// The paper reports that "the hypothesis of BBA-0 and Rmin-Always sharing
// the same distribution is not rejected at the 95% confidence level
// (p-value = 0.25)". The experiment harness performs the same test on the
// per-day window means; the Student-t CDF is computed via the regularized
// incomplete beta function.
#pragma once

#include <span>

namespace bba::stats {

/// Result of a Welch two-sample t-test.
struct TTestResult {
  double t = 0.0;        ///< t statistic
  double df = 0.0;       ///< Welch-Satterthwaite degrees of freedom
  double p_value = 1.0;  ///< two-sided p-value
  /// True if the null (equal means) is rejected at the given alpha.
  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction expansion (Lentz). Domain: x in [0,1], a, b > 0.
double incomplete_beta(double a, double b, double x);

/// Two-sided CDF complement: P(|T| > |t|) for Student-t with df degrees of
/// freedom.
double student_t_two_sided_p(double t, double df);

/// Welch's t-test for unequal variances. Requires both samples to have at
/// least two elements; returns p=1 when either variance is zero and the
/// means coincide.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

}  // namespace bba::stats
