# Empty compiler generated dependencies file for outage_resilience.
# This may be replaced when dependencies are built.
