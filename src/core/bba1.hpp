// BBA-1: the VBR-aware buffer-based algorithm (Sec. 5).
//
// Two changes over BBA-0: (1) the reservoir is recomputed every chunk from
// the upcoming R_min chunk sizes (Fig. 12) instead of a fixed 90 s; (2) the
// rate map becomes a chunk map (Fig. 13), and Algorithm 1 generalizes to
// compare the map's allowable size against the size of the *next upcoming
// chunk* at the neighbouring rates. Optionally accrues outage protection
// (Sec. 7.1) by right-shifting the map.
#pragma once

#include "abr/abr.hpp"
#include "core/chunk_map.hpp"
#include "core/reservoir.hpp"

namespace bba::core {

/// Configuration shared by BBA-1 and its derivatives.
struct Bba1Config {
  ReservoirConfig reservoir;

  /// Buffer fraction where the chunk map first allows Chunk_max (the map
  /// reaches the top "when the buffer is 90% full").
  double upper_knee_fraction = 0.9;

  /// Rate index used as "previous" for the very first chunk.
  std::size_t start_index = 0;

  /// BBA-Others: the chunk map may shift right but never left (the
  /// reservoir expands but never shrinks, Sec. 7.2).
  bool monotone_reservoir = false;

  /// Sec. 7.1 outage protection: accrue `outage_accrual_s` of extra
  /// reservoir per downloaded chunk while the buffer is increasing and
  /// below `outage_accrue_below_fraction` of capacity, up to
  /// `outage_cap_s`. On by default: the paper's deployed BBA-1
  /// implementation accumulated 400 ms per chunk (Sec. 7.1).
  bool outage_protection = true;
  double outage_accrual_s = 0.4;
  double outage_cap_s = 80.0;
  double outage_accrue_below_fraction = 0.75;

  /// Keep at least this much cushion between the effective reservoir and
  /// the upper knee (the dynamic reservoir plus outage protection could
  /// otherwise swallow the whole map).
  double min_cushion_s = 60.0;
};

/// The BBA-1 algorithm.
class Bba1 : public abr::RateAdaptation {
 public:
  explicit Bba1(Bba1Config cfg = {});

  std::size_t choose_rate(const abr::Observation& obs) override;
  void reset() override;
  std::string name() const override { return "bba1"; }

  /// Exports the config for the batched kernel -- only when the dynamic
  /// type is exactly Bba1 (a derived class may override decisions the
  /// kernel knows nothing about).
  bool batch_profile(abr::BatchDecisionProfile* out) const override;

  /// Effective reservoir currently in force (dynamic + outage protection,
  /// after monotonicity). Exposed for tests and Fig. 12.
  double effective_reservoir_s() const { return effective_reservoir_s_; }
  double outage_protection_s() const { return outage_s_; }

 protected:
  /// Recomputes the reservoir/outage state for this decision. Called once
  /// per choose_rate by this class and by derived classes.
  void update_state(const abr::Observation& obs);

  /// The chunk map in force for this decision (valid after update_state).
  ChunkMap current_map(const abr::Observation& obs) const;

  /// Generalized Algorithm 1 over the chunk map (valid after update_state).
  std::size_t steady_choice(const abr::Observation& obs);

  /// What the chunk map alone suggests, ignoring the hysteresis barriers:
  /// the highest rate whose next chunk fits under the map (used by BBA-2's
  /// startup-exit test).
  std::size_t map_suggestion(const abr::Observation& obs) const;

  /// Hook for BBA-Others: given the Algorithm-1 up-switch candidate, return
  /// the (possibly smoothed) rate to use. Default: accept the candidate.
  virtual std::size_t filter_up_switch(const abr::Observation& obs,
                                       std::size_t candidate,
                                       std::size_t prev, double map_bits);

  /// Previous rate for this decision (start_index for the first chunk).
  std::size_t prev_index(const abr::Observation& obs) const;

  /// Derived classes may gate outage accrual (BBA-2 accrues only after the
  /// startup phase exits).
  bool outage_accrual_enabled_ = true;

  Bba1Config cfg_;

 private:
  double effective_reservoir_s_ = 8.0;
  double outage_s_ = 0.0;
  double prev_buffer_s_ = 0.0;
  bool has_prev_buffer_ = false;
};

}  // namespace bba::core
