# Empty compiler generated dependencies file for test_core_algorithm1_sweep.
# This may be replaced when dependencies are built.
