// Tests for the core map machinery: RateMap (Figs. 5/6), ChunkMap
// (Fig. 13), and the dynamic reservoir calculation (Fig. 12).
#include <gtest/gtest.h>

#include "core/chunk_map.hpp"
#include "core/rate_map.hpp"
#include "core/reservoir.hpp"
#include "media/vbr.hpp"
#include "media/video.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba::core {
namespace {

using util::kbps;

TEST(RateMap, PinnedAtBothEnds) {
  const RateMap map(90.0, 126.0, kbps(235), kbps(5000));
  EXPECT_DOUBLE_EQ(map.rate_at_bps(0.0), kbps(235));
  EXPECT_DOUBLE_EQ(map.rate_at_bps(90.0), kbps(235));
  EXPECT_DOUBLE_EQ(map.rate_at_bps(216.0), kbps(5000));
  EXPECT_DOUBLE_EQ(map.rate_at_bps(240.0), kbps(5000));
}

TEST(RateMap, LinearAcrossCushion) {
  const RateMap map(90.0, 126.0, kbps(235), kbps(5000));
  const double mid = map.rate_at_bps(90.0 + 63.0);
  EXPECT_NEAR(mid, (kbps(235) + kbps(5000)) / 2.0, 1.0);
}

TEST(RateMap, StrictlyIncreasingInCushion) {
  const RateMap map(90.0, 126.0, kbps(235), kbps(5000));
  double prev = map.rate_at_bps(90.0);
  for (double b = 91.0; b < 216.0; b += 1.0) {
    const double f = map.rate_at_bps(b);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(RateMap, Bba0DefaultGeometry) {
  const RateMap map = RateMap::bba0_default(kbps(235), kbps(5000));
  EXPECT_DOUBLE_EQ(map.reservoir_s(), 90.0);
  EXPECT_DOUBLE_EQ(map.cushion_s(), 126.0);
  EXPECT_DOUBLE_EQ(map.upper_reservoir_start_s(), 216.0);
}

TEST(RateMap, SafeAreaBoundary) {
  const RateMap map = RateMap::bba0_default(kbps(235), kbps(5000));
  // Below the reservoir: the map pins to R_min (treated as safe).
  EXPECT_TRUE(map.is_safe_at(50.0, 4.0));
  // Just above the reservoir the continuous map is nominally risky
  // (a chunk takes at least V seconds of buffer).
  EXPECT_FALSE(map.is_safe_at(92.0, 4.0));
  // Deep in the cushion the map is safe: V*f(B)/Rmin << B - r.
  EXPECT_TRUE(map.is_safe_at(150.0, 4.0));
  EXPECT_TRUE(map.is_safe_at(216.0, 4.0));
}

TEST(ChunkMap, PinnedAndLinear) {
  const ChunkMap map(20.0, 216.0, 1000.0, 21000.0);
  EXPECT_DOUBLE_EQ(map.max_chunk_bits(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(map.max_chunk_bits(20.0), 1000.0);
  EXPECT_DOUBLE_EQ(map.max_chunk_bits(216.0), 21000.0);
  EXPECT_DOUBLE_EQ(map.max_chunk_bits(240.0), 21000.0);
  EXPECT_DOUBLE_EQ(map.max_chunk_bits(118.0), 11000.0);  // midpoint
  EXPECT_DOUBLE_EQ(map.cushion_s(), 196.0);
}

TEST(ChunkMap, MonotoneEverywhere) {
  const ChunkMap map(8.0, 216.0, 940e3, 20e6);
  double prev = 0.0;
  for (double b = 0.0; b <= 240.0; b += 0.5) {
    const double bits = map.max_chunk_bits(b);
    EXPECT_GE(bits, prev);
    prev = bits;
  }
}

TEST(Reservoir, ZeroForCbr) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const auto table = media::make_cbr_table(ladder, 300, 4.0);
  // CBR: consumption at R_min exactly equals resupply -> raw = 0, clamped
  // to the 8 s minimum.
  EXPECT_NEAR(raw_reservoir_s(table, 0, ladder.rmin_bps(), 0, 480.0), 0.0,
              1e-9);
  const ReservoirConfig cfg;
  EXPECT_DOUBLE_EQ(compute_reservoir_s(table, 0, ladder.rmin_bps(), 0, cfg),
                   8.0);
}

TEST(Reservoir, PositiveForDemandingWindow) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  // All chunks 1.5x the average: downloading at R_min loses 2 s per chunk.
  const auto table = media::make_vbr_table(
      ladder, std::vector<double>(300, 1.5), 4.0);
  const double raw = raw_reservoir_s(table, 0, ladder.rmin_bps(), 0, 480.0);
  // 120 chunks in the window, each consuming 6 s while resupplying 4 s.
  EXPECT_NEAR(raw, 120.0 * 2.0, 1e-6);
}

TEST(Reservoir, NegativeForEasyWindow) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const auto table = media::make_vbr_table(
      ladder, std::vector<double>(300, 0.5), 4.0);
  const double raw = raw_reservoir_s(table, 0, ladder.rmin_bps(), 0, 480.0);
  EXPECT_NEAR(raw, -120.0 * 2.0, 1e-6);
  const ReservoirConfig cfg;
  EXPECT_DOUBLE_EQ(compute_reservoir_s(table, 0, ladder.rmin_bps(), 0, cfg),
                   cfg.min_s);
}

TEST(Reservoir, ClampsAtMaximum) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const auto table = media::make_vbr_table(
      ladder, std::vector<double>(300, 2.2), 4.0);
  const ReservoirConfig cfg;
  EXPECT_DOUBLE_EQ(compute_reservoir_s(table, 0, ladder.rmin_bps(), 0, cfg),
                   cfg.max_s);
}

TEST(Reservoir, WindowTruncatesAtVideoEnd) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const auto table = media::make_vbr_table(
      ladder, std::vector<double>(50, 1.5), 4.0);
  // Only 10 chunks remain.
  const double raw = raw_reservoir_s(table, 0, ladder.rmin_bps(), 40, 480.0);
  EXPECT_NEAR(raw, 10.0 * 2.0, 1e-6);
  // Past the end: nothing to absorb.
  EXPECT_DOUBLE_EQ(raw_reservoir_s(table, 0, ladder.rmin_bps(), 50, 480.0),
                   0.0);
}

TEST(Reservoir, CachedWindowSumsAreBitIdentical) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  util::Rng rng(11);
  std::vector<double> complexity(300);
  for (double& c : complexity) c = rng.uniform(0.4, 2.2);
  const auto table = media::make_vbr_table(ladder, complexity, 4.0);

  ReservoirConfig cached;  // cache_window_sums defaults to on
  ReservoirConfig scanning = cached;
  scanning.cache_window_sums = false;
  for (std::size_t k = 0; k <= table.num_chunks(); ++k) {
    // EXPECT_EQ on doubles is exact: the memoized reservoir must be
    // bit-for-bit the per-decision scan, at every position.
    EXPECT_EQ(compute_reservoir_s(table, 0, ladder.rmin_bps(), k, cached),
              compute_reservoir_s(table, 0, ladder.rmin_bps(), k, scanning))
        << "next_chunk " << k;
  }
}

TEST(Reservoir, ShorterLookaheadSeesLess) {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  std::vector<double> complexity(300, 1.0);
  // A demanding stretch from chunk 60 to 120.
  for (std::size_t k = 60; k < 120; ++k) complexity[k] = 2.0;
  const auto table = media::make_vbr_table(ladder, complexity, 4.0);
  // A 60 s lookahead (15 chunks) from chunk 0 sees none of it; 480 s
  // (120 chunks) sees half of it.
  EXPECT_NEAR(raw_reservoir_s(table, 0, ladder.rmin_bps(), 0, 60.0), 0.0,
              1e-6);
  EXPECT_GT(raw_reservoir_s(table, 0, ladder.rmin_bps(), 0, 480.0), 100.0);
}

}  // namespace
}  // namespace bba::core
