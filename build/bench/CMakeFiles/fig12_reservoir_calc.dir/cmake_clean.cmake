file(REMOVE_RECURSE
  "CMakeFiles/fig12_reservoir_calc.dir/fig12_reservoir_calc.cpp.o"
  "CMakeFiles/fig12_reservoir_calc.dir/fig12_reservoir_calc.cpp.o.d"
  "fig12_reservoir_calc"
  "fig12_reservoir_calc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_reservoir_calc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
