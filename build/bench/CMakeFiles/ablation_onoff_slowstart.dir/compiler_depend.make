# Empty compiler generated dependencies file for ablation_onoff_slowstart.
# This may be replaced when dependencies are built.
