// Incremental, O(1)-amortized reader over a CapacityTrace.
//
// CapacityTrace answers every query with a fresh binary search over its
// segment prefix table. A simulated session, however, queries the SAME
// trace at monotonically non-decreasing times (each chunk starts where the
// previous one finished), so the segment containing the query is almost
// always the hinted one or a near successor. TraceCursor keeps that hint:
// monotone query streams advance it incrementally (amortized O(1) per
// query across a cycle), and a rewind -- a query earlier than the hint --
// falls back to the trace's own binary search.
//
// Contract: every method returns a result BIT-IDENTICAL to the same-named
// CapacityTrace method. The cursor only replaces how the segment index is
// found (an integer, found exactly either way); all floating-point
// arithmetic on times and bits is the verbatim CapacityTrace expression
// sequence. tests/test_net_cursor.cpp enforces this on randomized query
// streams.
//
// A cursor borrows the trace: it must not outlive it, and the trace must
// not be mutated (assign()) while the cursor is in use.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/capacity_trace.hpp"

namespace bba::net {

/// Stateful trace reader; cheap to construct (no allocation), one per
/// session.
class TraceCursor {
 public:
  explicit TraceCursor(const CapacityTrace& trace) : trace_(&trace) {}

  const CapacityTrace& trace() const { return *trace_; }

  /// Bit-identical to CapacityTrace::rate_at_bps.
  double rate_at_bps(double t_s);

  /// Bit-identical to CapacityTrace::finish_time_s.
  double finish_time_s(double start_s, double bits);

  /// Bit-identical to CapacityTrace::bits_between.
  double bits_between(double t0_s, double t1_s);

  /// Bit-identical to CapacityTrace::average_bps.
  double average_bps(double t0_s, double t1_s);

  /// Lookup tallies, kept as plain members (a seek runs in nanoseconds, so
  /// even a thread-local touch per call is too expensive); the session
  /// owner flushes them into the obs registry once, at session end.
  std::uint32_t queries() const { return queries_; }
  std::uint32_t rewinds() const { return rewinds_; }

 private:
  /// Segment index containing in-cycle time `pos` (0 <= pos <= cycle):
  /// advances the hint forward when possible, binary-searches on rewind.
  /// Always equals trace_->segment_index_at(pos).
  std::size_t seek(double pos);

  /// CapacityTrace::bits_prefix with the hinted lookup.
  double bits_prefix(double t_s);

  const CapacityTrace* trace_;
  std::size_t hint_ = 0;
  std::uint32_t queries_ = 0;
  std::uint32_t rewinds_ = 0;
};

}  // namespace bba::net
