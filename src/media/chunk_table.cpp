#include "media/chunk_table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::media {

ChunkTable::ChunkTable(std::vector<std::vector<double>> sizes_bits,
                       double chunk_duration_s)
    : sizes_bits_(std::move(sizes_bits)),
      chunk_duration_s_(chunk_duration_s) {
  BBA_ASSERT(chunk_duration_s_ > 0.0, "chunk duration must be > 0");
  BBA_ASSERT(!sizes_bits_.empty(), "ChunkTable requires at least one rate");
  const std::size_t n = sizes_bits_.front().size();
  BBA_ASSERT(n > 0, "ChunkTable requires at least one chunk");
  for (const auto& row : sizes_bits_) {
    BBA_ASSERT(row.size() == n, "all rates must have the same chunk count");
    for (double s : row) {
      BBA_ASSERT(s > 0.0, "chunk sizes must be > 0");
    }
  }
  mean_bits_.reserve(sizes_bits_.size());
  for (const auto& row : sizes_bits_) {
    double sum = 0.0;
    for (double s : row) sum += s;
    mean_bits_.push_back(sum / static_cast<double>(n));
  }
}

double ChunkTable::video_duration_s() const {
  return chunk_duration_s_ * static_cast<double>(num_chunks());
}

double ChunkTable::size_bits(std::size_t rate, std::size_t k) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  BBA_ASSERT(k < num_chunks(), "chunk index out of range");
  return sizes_bits_[rate][k];
}

double ChunkTable::mean_size_bits(std::size_t rate) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  return mean_bits_[rate];
}

double ChunkTable::max_size_bits(std::size_t rate) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  return *std::max_element(sizes_bits_[rate].begin(),
                           sizes_bits_[rate].end());
}

double ChunkTable::max_to_avg_ratio(std::size_t rate) const {
  return max_size_bits(rate) / mean_size_bits(rate);
}

double ChunkTable::max_size_in_window_bits(std::size_t rate, std::size_t k,
                                           std::size_t count) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  BBA_ASSERT(k < num_chunks(), "chunk index out of range");
  const std::size_t end = std::min(k + count, num_chunks());
  double best = 0.0;
  for (std::size_t i = k; i < end; ++i) {
    best = std::max(best, sizes_bits_[rate][i]);
  }
  return best;
}

double ChunkTable::sum_size_in_window_bits(std::size_t rate, std::size_t k,
                                           std::size_t count) const {
  BBA_ASSERT(rate < num_rates(), "rate index out of range");
  BBA_ASSERT(k < num_chunks(), "chunk index out of range");
  const std::size_t end = std::min(k + count, num_chunks());
  double sum = 0.0;
  for (std::size_t i = k; i < end; ++i) sum += sizes_bits_[rate][i];
  return sum;
}

}  // namespace bba::media
