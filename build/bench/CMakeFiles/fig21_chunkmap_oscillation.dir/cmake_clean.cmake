file(REMOVE_RECURSE
  "CMakeFiles/fig21_chunkmap_oscillation.dir/fig21_chunkmap_oscillation.cpp.o"
  "CMakeFiles/fig21_chunkmap_oscillation.dir/fig21_chunkmap_oscillation.cpp.o.d"
  "fig21_chunkmap_oscillation"
  "fig21_chunkmap_oscillation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_chunkmap_oscillation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
