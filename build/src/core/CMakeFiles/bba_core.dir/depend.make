# Empty dependencies file for bba_core.
# This may be replaced when dependencies are built.
