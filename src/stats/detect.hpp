// Deterministic online drift detectors for the fleet health monitor.
//
// Three detector primitives, each a plain-data state struct plus a pure
// step function, so the health monitor (obs/monitor.hpp) can serialize
// detector state into a checkpoint as raw IEEE-754 bits and resume
// bit-exactly:
//
//   * EWMA control band -- a Welford warmup over the first `warmup`
//     observations freezes a baseline (mean, sd); afterwards each value is
//     tested against ewma +/- band_k * sd BEFORE the ewma updates, so the
//     test is a pure function of the value sequence prefix.
//   * CUSUM change-point -- one-sided cumulative sums of z-scores against
//     the frozen baseline (s_pos for upward drift, s_neg for downward),
//     with the classic k-slack / h-threshold parametrization. The fired
//     side resets so sustained drift re-alarms rather than saturating.
//   * SLO burn streak -- "metric breaches the objective for N consecutive
//     windows" fires exactly when the streak reaches N, then re-arms only
//     after a healthy window.
//
// Every step is a fixed sequence of double operations on the state -- no
// wall clock, no randomness -- so feeding the same value sequence always
// produces bit-identical states and the same firing pattern. Header-only:
// the obs library stays leaf-linked (it depends only on bba_util).
#pragma once

#include <cmath>
#include <cstdint>

namespace bba::stats {

/// Shared baseline accumulator: Welford mean/M2 over the warmup prefix.
struct Warmup {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void add(double x) {
    n += 1;
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }

  /// Sample standard deviation with a floor: max(sd, floor_frac * |mean|,
  /// 1e-9). The floor keeps near-constant metrics (e.g. a rebuffer ratio
  /// pinned at 0) from turning ordinary jitter into an alarm storm.
  double floored_sd(double floor_frac) const {
    const double sd =
        n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
    const double floor = floor_frac * std::fabs(mean);
    const double lo = floor > 1e-9 ? floor : 1e-9;
    return sd > lo ? sd : lo;
  }
};

struct EwmaConfig {
  double alpha = 0.2;    ///< smoothing factor
  double band_k = 3.0;   ///< control band half-width, in baseline sds
  std::uint64_t warmup = 8;
  double sd_floor_frac = 0.05;
};

struct EwmaState {
  Warmup base;
  double ewma = 0.0;
  double sd = 0.0;
  bool ready = false;
};

/// Feeds one observation. Returns +1 (above band), -1 (below band), or 0.
/// The band test uses the ewma BEFORE this observation folds in, so the
/// verdict depends only on the prefix -- a value never tests against a
/// band it just moved.
inline int ewma_step(EwmaState& s, double x, const EwmaConfig& cfg) {
  if (!s.ready) {
    s.base.add(x);
    if (s.base.n >= cfg.warmup) {
      s.ready = true;
      s.ewma = s.base.mean;
      s.sd = s.base.floored_sd(cfg.sd_floor_frac);
    }
    return 0;
  }
  const double dev = x - s.ewma;
  int fired = 0;
  if (dev > cfg.band_k * s.sd) {
    fired = 1;
  } else if (dev < -cfg.band_k * s.sd) {
    fired = -1;
  }
  s.ewma += cfg.alpha * (x - s.ewma);
  return fired;
}

struct CusumConfig {
  double k = 0.5;  ///< slack, in baseline sds (half the shift to detect)
  double h = 5.0;  ///< decision threshold, in baseline sds
  std::uint64_t warmup = 8;
  double sd_floor_frac = 0.05;
};

struct CusumState {
  Warmup base;
  double sd = 0.0;
  bool ready = false;
  double s_pos = 0.0;
  double s_neg = 0.0;
};

/// Feeds one observation. Returns +1 when the upward sum crosses h, -1 for
/// the downward sum, 0 otherwise. The fired side resets to 0.
inline int cusum_step(CusumState& s, double x, const CusumConfig& cfg) {
  if (!s.ready) {
    s.base.add(x);
    if (s.base.n >= cfg.warmup) {
      s.ready = true;
      s.sd = s.base.floored_sd(cfg.sd_floor_frac);
    }
    return 0;
  }
  const double z = (x - s.base.mean) / s.sd;
  double sp = s.s_pos + z - cfg.k;
  double sn = s.s_neg - z - cfg.k;
  s.s_pos = sp > 0.0 ? sp : 0.0;
  s.s_neg = sn > 0.0 ? sn : 0.0;
  if (s.s_pos > cfg.h) {
    s.s_pos = 0.0;
    return 1;
  }
  if (s.s_neg > cfg.h) {
    s.s_neg = 0.0;
    return -1;
  }
  return 0;
}

struct BurnConfig {
  double threshold = 0.0;
  std::uint64_t windows = 3;  ///< consecutive breaches before firing
};

struct BurnState {
  std::uint64_t streak = 0;
  bool armed = true;
};

/// Feeds one observation against "metric > threshold". Fires (returns
/// true) exactly when the streak reaches cfg.windows; stays silent while
/// the breach persists, and re-arms on the first healthy window.
inline bool burn_step(BurnState& s, double x, const BurnConfig& cfg) {
  if (!(x > cfg.threshold)) {
    s.streak = 0;
    s.armed = true;
    return false;
  }
  s.streak += 1;
  if (s.armed && s.streak >= cfg.windows) {
    s.armed = false;
    return true;
  }
  return false;
}

}  // namespace bba::stats
