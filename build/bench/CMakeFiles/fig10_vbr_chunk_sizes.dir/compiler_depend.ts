# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_vbr_chunk_sizes.
