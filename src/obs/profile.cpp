#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

namespace bba::obs {

Profiler::Profiler(std::size_t slots, std::size_t max_events_per_slot)
    : slots_(slots == 0 ? 1 : slots),
      max_events_(max_events_per_slot),
      epoch_(std::chrono::steady_clock::now()) {}

void Profiler::record(std::size_t slot, const char* name, double ts_us,
                      double dur_us) {
  SlotBuf& buf = slots_[slot % slots_.size()];
  if (buf.events.size() >= max_events_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(
      {name, ts_us, dur_us, static_cast<std::uint32_t>(slot)});
}

std::string Profiler::chrome_trace_json() const {
  std::vector<Event> merged;
  std::size_t total = 0;
  for (const SlotBuf& s : slots_) total += s.events.size();
  merged.reserve(total);
  for (const SlotBuf& s : slots_) {
    merged.insert(merged.end(), s.events.begin(), s.events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Event& a, const Event& b) { return a.ts_us < b.ts_us; });

  // Metadata (ph:"M") events first, so Perfetto / chrome://tracing label
  // the process and each executor-slot track instead of showing bare pids.
  std::vector<std::uint32_t> tids;
  tids.reserve(merged.size());
  for (const Event& e : merged) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[256];
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"bba harness\"}}";
  for (const std::uint32_t tid : tids) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"slot %u\"}}",
                  tid, tid);
    out += buf;
  }
  for (const Event& e : merged) {
    std::snprintf(buf, sizeof buf,
                  ",{\"name\":\"%s\",\"cat\":\"bba\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u}",
                  e.name, e.ts_us, e.dur_us, e.tid);
    out += buf;
  }
  out += "]}";
  return out;
}

bool Profiler::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace bba::obs
