file(REMOVE_RECURSE
  "CMakeFiles/bba_util.dir/csv.cpp.o"
  "CMakeFiles/bba_util.dir/csv.cpp.o.d"
  "CMakeFiles/bba_util.dir/rng.cpp.o"
  "CMakeFiles/bba_util.dir/rng.cpp.o.d"
  "CMakeFiles/bba_util.dir/table.cpp.o"
  "CMakeFiles/bba_util.dir/table.cpp.o.d"
  "libbba_util.a"
  "libbba_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
