// Quickstart: stream one synthetic VBR title over a variable network with
// the BBA-2 algorithm and print the session timeline and quality metrics.
//
//   $ ./build/examples/quickstart
//
// This is the smallest end-to-end use of the library: build a video, build
// a capacity trace, pick an algorithm, simulate, inspect the results.
#include <cstdio>

#include "core/bba2.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

int main() {
  using namespace bba;

  // A 40-minute VBR title on the 2013-era Netflix ladder (235 kb/s-5 Mb/s).
  util::Rng rng(7);
  const media::Video video = media::make_vbr_video(
      "quickstart-title", media::EncodingLadder::netflix_2013(),
      /*num_chunks=*/600, /*chunk_duration_s=*/4.0, media::VbrConfig{}, rng);

  // A variable network: median 3 Mb/s, heavy within-session variation.
  net::MarkovTraceConfig net_cfg;
  net_cfg.median_bps = util::mbps(3.0);
  net_cfg.sigma_log = 0.8;
  const net::CapacityTrace trace = net::make_markov_trace(net_cfg, rng);

  // The BBA-2 algorithm with its paper defaults.
  core::Bba2 abr;

  // A 30-minute viewing session on the paper's 240 s-buffer player.
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(30);
  const sim::SessionResult session =
      sim::simulate_session(video, trace, abr, player);

  // Print a coarse timeline: one line every 30 downloaded chunks.
  std::printf("time(s)  chunk  rate(kb/s)  buffer(s)  throughput(kb/s)\n");
  for (std::size_t i = 0; i < session.chunks.size(); i += 30) {
    const auto& c = session.chunks[i];
    std::printf("%7.1f  %5zu  %10.0f  %9.1f  %16.0f\n", c.finish_s, c.index,
                util::to_kbps(c.rate_bps), c.buffer_after_s,
                util::to_kbps(c.throughput_bps));
  }

  const sim::SessionMetrics m = sim::compute_metrics(session);
  std::printf("\nSession metrics\n");
  std::printf("  played               %.1f min\n", m.play_s / 60.0);
  std::printf("  join delay           %.2f s\n", m.join_s);
  std::printf("  rebuffers            %lld (%.1f s total)\n",
              m.rebuffer_count, m.rebuffer_s);
  std::printf("  avg video rate       %.0f kb/s\n",
              util::to_kbps(m.avg_rate_bps));
  std::printf("  startup rate (<2min) %.0f kb/s\n",
              util::to_kbps(m.startup_rate_bps));
  std::printf("  steady rate (>2min)  %.0f kb/s\n",
              util::to_kbps(m.steady_rate_bps));
  std::printf("  switches             %lld (%.1f / playhour)\n",
              m.switch_count, m.switches_per_hour);
  return 0;
}
