
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bba0.cpp" "src/core/CMakeFiles/bba_core.dir/bba0.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/bba0.cpp.o.d"
  "/root/repo/src/core/bba1.cpp" "src/core/CMakeFiles/bba_core.dir/bba1.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/bba1.cpp.o.d"
  "/root/repo/src/core/bba2.cpp" "src/core/CMakeFiles/bba_core.dir/bba2.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/bba2.cpp.o.d"
  "/root/repo/src/core/bba_others.cpp" "src/core/CMakeFiles/bba_core.dir/bba_others.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/bba_others.cpp.o.d"
  "/root/repo/src/core/chunk_map.cpp" "src/core/CMakeFiles/bba_core.dir/chunk_map.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/chunk_map.cpp.o.d"
  "/root/repo/src/core/map_families.cpp" "src/core/CMakeFiles/bba_core.dir/map_families.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/map_families.cpp.o.d"
  "/root/repo/src/core/rate_map.cpp" "src/core/CMakeFiles/bba_core.dir/rate_map.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/rate_map.cpp.o.d"
  "/root/repo/src/core/reservoir.cpp" "src/core/CMakeFiles/bba_core.dir/reservoir.cpp.o" "gcc" "src/core/CMakeFiles/bba_core.dir/reservoir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abr/CMakeFiles/bba_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/bba_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bba_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bba_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bba_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
