// Deterministic parallel execution of independent session cells.
//
// The A/B harness (and any future sweep) is a map-fold: simulate N
// independent cells, then aggregate them. SessionExecutor parallelises the
// map on a ThreadPool and keeps the fold sequential in canonical index
// order, which makes the combined result bit-identical for every thread
// count -- floating-point accumulation happens in exactly one order, the
// index order, no matter how cells were scheduled.
#pragma once

#include <cstddef>
#include <functional>

#include "runtime/thread_pool.hpp"

namespace bba::runtime {

/// Runs `produce(i)` for every i in [0, count) on the pool (any thread,
/// any order), then `fold(i)` for i = 0, 1, ..., count-1 sequentially on
/// the calling thread.
///
/// Determinism contract: produce(i) must write only to slot i of storage
/// the caller pre-sized before the call (and read only immutable shared
/// state); fold reads those slots. Under that contract the result is a
/// pure function of the inputs, independent of thread count and schedule.
class SessionExecutor {
 public:
  /// threads == 0 selects hardware concurrency; threads == 1 is the
  /// reference sequential schedule (no worker threads at all).
  explicit SessionExecutor(std::size_t threads = 0) : pool_(threads) {}

  /// Threads executing produce() calls (>= 1).
  std::size_t threads() const { return pool_.size(); }

  ThreadPool& pool() { return pool_; }

  /// The deterministic map + ordered fold described above. `grain` is the
  /// parallel_for chunk size (0 = default). Exceptions from produce()
  /// propagate before any fold() runs; fold() runs only on full success.
  void execute(std::size_t count,
               const std::function<void(std::size_t)>& produce,
               const std::function<void(std::size_t)>& fold,
               std::size_t grain = 0);

  /// execute() with slot-aware produce: produce(i, slot) receives the
  /// executing thread's slot index in [0, threads()), never used by two
  /// concurrent invocations. Pre-size per-thread scratch to threads() and
  /// index it by slot — no locking needed. The scratch must not feed into
  /// the produced values in any slot-dependent way, or determinism across
  /// thread counts is lost.
  void execute_slotted(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& produce,
      const std::function<void(std::size_t)>& fold, std::size_t grain = 0);

  /// Total fold() calls completed across every execute*() on this
  /// executor. Because the fold is strictly sequential in index order,
  /// this is an exact cursor into the canonical task sequence -- the
  /// checkpoint layer reads it to know how far a chunked run has folded.
  std::size_t tasks_folded() const { return tasks_folded_; }

  void reset_tasks_folded() { tasks_folded_ = 0; }

 private:
  ThreadPool pool_;
  std::size_t tasks_folded_ = 0;
};

}  // namespace bba::runtime
