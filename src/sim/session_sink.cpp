#include "sim/session_sink.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace bba::sim {

RecordingSink::RecordingSink(SessionResult* out) : out_(out) {
  BBA_ASSERT(out_ != nullptr, "RecordingSink requires a target");
}

void RecordingSink::on_session_start(double chunk_duration_s) {
  out_->chunks.clear();
  out_->rebuffers.clear();
  out_->chunk_duration_s = chunk_duration_s;
  out_->join_s = 0.0;
  out_->played_s = 0.0;
  out_->wall_s = 0.0;
  out_->started = false;
  out_->abandoned = false;
}

void RecordingSink::on_chunk(const ChunkRecord& chunk, double /*played_s*/) {
  out_->chunks.push_back(chunk);
}

void RecordingSink::on_rebuffer(const RebufferEvent& event) {
  out_->rebuffers.push_back(event);
}

void RecordingSink::on_session_end(const SessionSummary& summary) {
  out_->chunk_duration_s = summary.chunk_duration_s;
  out_->join_s = summary.join_s;
  out_->played_s = summary.played_s;
  out_->wall_s = summary.wall_s;
  out_->started = summary.started;
  out_->abandoned = summary.abandoned;
}

StreamingMetricsSink::StreamingMetricsSink(double steady_after_s)
    : steady_after_s_(steady_after_s) {
  BBA_ASSERT(steady_after_s_ > 0.0, "steady_after_s must be > 0");
}

void StreamingMetricsSink::on_session_start(double chunk_duration_s) {
  chunk_duration_s_ = chunk_duration_s;
  head_ = 0;
  count_ = 0;
  total_weight_ = total_rate_ = 0.0;
  start_weight_ = start_rate_ = 0.0;
  steady_weight_ = steady_rate_ = 0.0;
  switch_count_ = 0;
  prev_rate_index_ = 0;
  has_prev_rate_ = false;
  rebuffer_count_ = 0;
  rebuffer_s_ = 0.0;
  fault_stall_count_ = 0;
  buffer_sum_ = 0.0;
  chunk_count_ = 0;
  metrics_ = SessionMetrics{};
}

void StreamingMetricsSink::fold(double position_s, double rate_bps,
                                double played_portion, double start_overlap) {
  // The exact accumulation sequence of the compute_metrics loop body; every
  // chunk passes through here exactly once, in download order.
  (void)position_s;
  total_weight_ += played_portion;
  total_rate_ += rate_bps * played_portion;
  start_weight_ += start_overlap;
  start_rate_ += rate_bps * start_overlap;
  const double steady_overlap = played_portion - start_overlap;
  steady_weight_ += steady_overlap;
  steady_rate_ += rate_bps * steady_overlap;
}

void StreamingMetricsSink::push_pending(const PendingChunk& c) {
  if (count_ == ring_.size()) {
    // Grow (startup only): re-linearize the FIFO into the new storage.
    std::vector<PendingChunk> grown;
    grown.resize(std::max<std::size_t>(64, ring_.size() * 2));
    for (std::size_t i = 0; i < count_; ++i) {
      grown[i] = ring_[(head_ + i) % ring_.size()];
    }
    ring_.swap(grown);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = c;
  ++count_;
}

void StreamingMetricsSink::on_chunk(const ChunkRecord& chunk,
                                    double played_s) {
  if (has_prev_rate_ && chunk.rate_index != prev_rate_index_) {
    ++switch_count_;
  }
  prev_rate_index_ = chunk.rate_index;
  has_prev_rate_ = true;

  // Independent accumulator summed in on_chunk (= download) order: the
  // identical floating-point sequence compute_metrics performs over
  // result.chunks.
  buffer_sum_ += chunk.buffer_after_s;
  ++chunk_count_;

  push_pending({chunk.position_s, chunk.rate_bps});

  // Fold every pending chunk whose video interval playback has fully
  // passed: its compute_metrics clamps are saturated, so its contribution
  // no longer depends on the final played_s.
  //   played_portion = clamp(played_final - lo, 0, V) == V
  //     (played_final >= played_s and played_s - lo >= V already), and
  //   start_overlap = clamp(min(steady_after, played_final) - lo, 0, V)
  //                 == clamp(steady_after - lo, 0, V)
  //     (if played_final < steady_after, both saturate at V).
  const double V = chunk_duration_s_;
  while (count_ > 0) {
    const PendingChunk& front = ring_[head_];
    if (!(played_s - front.position_s >= V)) break;
    const double start_overlap =
        std::clamp(steady_after_s_ - front.position_s, 0.0, V);
    fold(front.position_s, front.rate_bps, V, start_overlap);
    head_ = (head_ + 1) % ring_.size();
    --count_;
  }
}

void StreamingMetricsSink::on_rebuffer(const RebufferEvent& event) {
  ++rebuffer_count_;
  rebuffer_s_ += event.duration_s;
  if (event.during_fault) ++fault_stall_count_;
}

void StreamingMetricsSink::on_session_end(const SessionSummary& summary) {
  SessionMetrics& m = metrics_;
  m.play_s = summary.played_s;
  m.join_s = summary.join_s;
  m.abandoned = summary.abandoned;
  m.rebuffer_count = rebuffer_count_;
  m.rebuffer_s = rebuffer_s_;
  m.fault_stall_count = fault_stall_count_;

  const double play_hours = util::to_hours(summary.played_s);
  if (play_hours > 0.0) {
    m.rebuffers_per_hour = static_cast<double>(m.rebuffer_count) / play_hours;
  }

  // Chunks still pending fold with the final played_s, verbatim the
  // compute_metrics expressions.
  const double V = summary.chunk_duration_s;
  for (std::size_t i = 0; i < count_; ++i) {
    const PendingChunk& c = ring_[(head_ + i) % ring_.size()];
    const double lo = c.position_s;
    const double played_portion =
        std::clamp(summary.played_s - lo, 0.0, V);
    if (played_portion <= 0.0) continue;
    const double start_overlap =
        std::clamp(std::min(steady_after_s_, summary.played_s) - lo, 0.0,
                   played_portion);
    fold(lo, c.rate_bps, played_portion, start_overlap);
  }
  head_ = 0;
  count_ = 0;

  if (chunk_count_ > 0) {
    m.avg_buffer_s = buffer_sum_ / static_cast<double>(chunk_count_);
  }
  if (total_weight_ > 0.0) m.avg_rate_bps = total_rate_ / total_weight_;
  if (start_weight_ > 0.0) m.startup_rate_bps = start_rate_ / start_weight_;
  if (steady_weight_ > 0.0) {
    m.steady_rate_bps = steady_rate_ / steady_weight_;
    m.has_steady = true;
    m.steady_play_s = steady_weight_;
  }

  m.switch_count = switch_count_;
  if (play_hours > 0.0) {
    m.switches_per_hour = static_cast<double>(m.switch_count) / play_hours;
  }
}

}  // namespace bba::sim
