# Empty compiler generated dependencies file for custom_rate_map.
# This may be replaced when dependencies are built.
