file(REMOVE_RECURSE
  "CMakeFiles/test_media_io.dir/test_media_io.cpp.o"
  "CMakeFiles/test_media_io.dir/test_media_io.cpp.o.d"
  "test_media_io"
  "test_media_io.pdb"
  "test_media_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_media_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
