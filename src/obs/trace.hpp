// Deterministic chunk-level session tracing to JSONL.
//
// The paper's per-session figures (4, 11, 16, 21) are chunk timelines; the
// A/B harness historically threw that information away. SessionTraceSink is
// a sim::SessionSink (tee it next to the Recording/StreamingMetrics sinks)
// that buffers one session's chunk / stall / switch / OFF-period events and
// serializes them as JSON lines when the session qualifies:
//
//  * deterministic sampling -- 1-in-N sessions, decided purely from the
//    session's grid coordinates via util::Rng::substream with the reserved
//    exp::StreamClass::kTraceSample, so the traced session set (and, with
//    the harness's canonical-order writing, the trace file bytes) is
//    identical at every thread count; or
//  * the anomaly trigger -- any session whose total stall time crosses
//    TraceConfig::anomaly_rebuffer_s, or that is abandoned / gives up,
//    captures its full timeline regardless of sampling. That is the
//    paper's Fig. 4 "aggressive case study" reproduced on demand: feed the
//    line back through `bba_session --repro-trace` to replay it bit-exact.
//
// Tracing never perturbs simulation values: the sink only observes events,
// so A/B results are bit-identical with tracing on, off, or at any
// sampling rate (tests/test_obs_trace.cpp enforces this).
//
// TraceCollector/SessionTraceSink are the JSONL pair and double as the
// base classes of the columnar binary pair in obs/btrace.hpp
// (BinaryTraceCollector/BinaryTraceSink): the sampling decision, anomaly
// trigger, event buffering, tallies, and the single-writer contract are
// format-independent, so only `finish` (serialize one session) and
// `write` (append to the container) differ. Harness code holds the base
// types and never branches on the format.
//
// File schema: docs/observability.md. A session's header line ("ev":
// "session", carrying coordinates, group, and summary) precedes its event
// lines; event lines belong to the most recent header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_inject.hpp"
#include "sim/session_sink.hpp"

namespace bba::obs {

class SessionTraceSink;

/// The collector state a checkpoint (exp/checkpoint.hpp) carries: the
/// write tallies plus the on-disk size at the checkpoint instant. Resuming
/// truncates the file back to `file_size` -- everything the interrupted
/// process wrote past its last checkpoint is discarded and re-simulated --
/// so the resumed file is byte-identical to an uninterrupted run's.
/// `format` / `sample` / `anomaly_rebuffer_s` pin the run configuration:
/// resuming with different trace settings would change the emitted session
/// set, so resume_from() rejects a mismatch.
struct TraceResumeState {
  std::string format;  ///< format_name() of the writing collector
  std::uint64_t sample = 0;
  double anomaly_rebuffer_s = 0.0;
  std::uint64_t sessions_written = 0;
  std::uint64_t anomalies_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t file_size = 0;  ///< flushed on-disk bytes at the checkpoint
};

/// Tracing parameters.
struct TraceConfig {
  /// Output path; empty discards serialized sessions (benchmarks measure
  /// serialization without I/O that way).
  std::string path;

  /// Sample 1-in-N sessions deterministically (0 = sampling off, only
  /// anomalies are captured; 1 = every session).
  std::uint64_t sample = 64;

  /// Anomaly trigger: capture any session whose total stall time reaches
  /// this many seconds (infinity disables).
  double anomaly_rebuffer_s = 30.0;

  /// Anomaly trigger: capture abandoned / gave-up sessions.
  bool capture_abandoned = true;

  /// Reopen `path` for appending instead of truncating it: a checkpoint
  /// resume continues an interrupted run's trace file. The collector is
  /// unusable until resume_from() restored the tallies and truncated the
  /// file back to the checkpointed offset.
  bool resume = false;

  bool anomalies_enabled() const {
    return capture_abandoned ||
           anomaly_rebuffer_s < std::numeric_limits<double>::infinity();
  }
};

/// Owns the trace output file and the sampling decision. The harness calls
/// `sampled()` from any thread (pure function of the coordinates) and
/// `write()` from exactly one thread, in canonical task order, so the file
/// is deterministic. This base class writes JSONL; BinaryTraceCollector
/// (obs/btrace.hpp) overrides the format hooks for the columnar container.
class TraceCollector {
 public:
  explicit TraceCollector(TraceConfig cfg);
  virtual ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  const TraceConfig& config() const { return cfg_; }

  /// True when the file opened (or no file was requested) and no write or
  /// flush has failed since. A full disk flips this to false; the byte
  /// tallies keep counting what *should* have been written, and
  /// `write_errors()` counts the failed calls.
  bool ok() const { return ok_; }

  /// The stats_json / CLI format tag: "jsonl" here, "btrace" for the
  /// binary collector.
  virtual const char* format_name() const { return "jsonl"; }

  /// A session sink producing this collector's serialization format. The
  /// harness creates one per worker slot and feeds its `finish` output
  /// back through `write`.
  virtual std::unique_ptr<SessionTraceSink> make_sink() const;

  /// Deterministic 1-in-N decision for session (seed, day, window,
  /// session): a pure function of the coordinates, independent of thread
  /// count, other sessions, or call order.
  bool sampled(std::uint64_t seed, std::uint64_t day, std::uint64_t window,
               std::uint64_t session) const;

  /// Appends pre-serialized bytes (single-writer; the harness calls this
  /// from its sequential fold). Empty config path counts but discards.
  /// Short writes set ok() false, bump write_errors, and warn on stderr
  /// once -- a full disk must not masquerade as a healthy trace.
  virtual void write(const std::string& bytes);

  virtual void flush();

  /// Ends the container: formats with a footer (btrace) write it here. A
  /// no-op for JSONL; destructors call it too, so explicit calls are only
  /// needed to read a complete file while the collector is still alive.
  virtual void finalize() {}

  /// Snapshot for a checkpoint: flushes, then captures the tallies and the
  /// on-disk size. Call from the harness's checkpoint boundary (between
  /// blocks, never mid-write).
  TraceResumeState resume_state();

  /// Restores a checkpointed state into a collector constructed with
  /// TraceConfig::resume: validates the format/sample/anomaly settings,
  /// truncates the file to st.file_size (discarding post-checkpoint
  /// bytes), and adopts the tallies. Returns false with *error set on a
  /// configuration mismatch or when the file is shorter than the
  /// checkpoint recorded (the trace was lost or replaced). The btrace
  /// override additionally rebuilds its footer index by rescanning the
  /// truncated file's blocks.
  virtual bool resume_from(const TraceResumeState& st, std::string* error);

  // Tallies for the metrics snapshot.
  std::uint64_t sessions_written() const { return sessions_written_; }
  std::uint64_t anomalies_written() const { return anomalies_written_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t write_errors() const { return write_errors_; }
  void note_session(bool anomalous);

  /// `"trace":{...}` JSON fragment for MetricsSnapshot::to_json.
  std::string stats_json() const;

 protected:
  /// Records one failed stdio call (short fwrite / failed fflush).
  void note_io_error(const char* op);

  std::FILE* file() { return file_; }

 private:
  TraceConfig cfg_;
  std::FILE* file_ = nullptr;
  bool ok_ = false;
  bool io_warned_ = false;
  std::uint64_t sessions_written_ = 0;
  std::uint64_t anomalies_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t write_errors_ = 0;
};

/// Buffers one session's events and serializes them on demand. Reusable:
/// begin() resets all per-session state, and the event buffers only grow
/// to the largest traced session (no steady-state allocation once warm).
/// The base class serializes JSONL; BinaryTraceSink (obs/btrace.hpp)
/// overrides finish() to emit a columnar binary block from the same
/// buffered events.
class SessionTraceSink : public sim::SessionSink {
 public:
  SessionTraceSink() = default;
  ~SessionTraceSink() override = default;

  /// Arms the sink for the next session. `sampled` is the collector's
  /// deterministic decision; buffering is skipped entirely when the
  /// session is unsampled and anomaly capture is off.
  void begin(const TraceConfig& cfg, std::uint64_t seed, std::uint64_t day,
             std::uint64_t window, std::uint64_t session,
             std::string_view group, bool sampled);

  /// Attaches the session's injected faults (borrowed; must stay alive
  /// through finish()). Call after begin() -- begin() detaches. When
  /// attached, the header carries the fault count and trace cycle, each
  /// fault serializes as a `fault` event line right after the header, and
  /// stall lines gain a `"fault"` attribution flag. Never attached (the
  /// faults-disabled path), the serialized bytes are identical to a build
  /// without fault injection.
  void set_faults(const std::vector<net::InjectedFault>* faults,
                  double trace_cycle_s, bool trace_loops);

  /// Marks this session as health-monitor evidence: `marker_line` (a
  /// '\n'-terminated {"ev":"alert",...} line) is emitted right after the
  /// session header, and the session qualifies for emission regardless of
  /// sampling. Call after begin() -- begin() clears it. The btrace sink
  /// carries the marker in its binary block and the reader re-emits it, so
  /// both formats round-trip identically.
  void set_alert(std::string_view marker_line);

  // sim::SessionSink
  void on_session_start(double chunk_duration_s) override;
  void on_chunk(const sim::ChunkRecord& chunk, double played_s) override;
  void on_rebuffer(const sim::RebufferEvent& event) override;
  void on_session_end(const sim::SessionSummary& summary) override;

  /// After on_session_end: true if the session qualified (sampled or
  /// anomalous). Valid until the next begin().
  bool should_emit() const { return emit_; }

  /// True if the anomaly trigger fired for the last session.
  bool anomalous() const { return anomalous_; }

  /// Serializes the buffered session (header + chronological event lines
  /// in this sink's format) and appends to `out` if it qualified. Returns
  /// should_emit().
  virtual bool finish(std::string* out) const;

 protected:
  const TraceConfig* cfg_ = nullptr;
  std::uint64_t seed_ = 0, day_ = 0, window_ = 0, session_ = 0;
  std::string group_;
  bool sampled_ = false;
  bool capture_ = false;  ///< buffer events at all
  bool emit_ = false;
  bool anomalous_ = false;

  std::vector<sim::ChunkRecord> chunks_;
  std::vector<double> played_at_chunk_;
  std::vector<sim::RebufferEvent> rebuffers_;
  sim::SessionSummary summary_;
  double rebuffer_total_s_ = 0.0;
  bool ended_ = false;

  const std::vector<net::InjectedFault>* faults_ = nullptr;
  double fault_cycle_s_ = 0.0;
  bool fault_loops_ = false;

  std::string alert_marker_;  ///< empty = not an alert capture
};

}  // namespace bba::obs
