#include "media/encoding_ladder.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace bba::media {

EncodingLadder::EncodingLadder(std::vector<double> rates_bps)
    : rates_bps_(std::move(rates_bps)) {
  BBA_ASSERT(!rates_bps_.empty(), "EncodingLadder requires at least one rate");
  std::sort(rates_bps_.begin(), rates_bps_.end());
  BBA_ASSERT(rates_bps_.front() > 0.0, "EncodingLadder rates must be > 0");
  BBA_ASSERT(std::adjacent_find(rates_bps_.begin(), rates_bps_.end()) ==
                 rates_bps_.end(),
             "EncodingLadder rates must be unique");
}

EncodingLadder EncodingLadder::netflix_2013() {
  using util::kbps;
  return EncodingLadder({kbps(235), kbps(375), kbps(560), kbps(750),
                         kbps(1050), kbps(1750), kbps(2350), kbps(3000),
                         kbps(5000)});
}

EncodingLadder EncodingLadder::netflix_2013_rmin560() {
  using util::kbps;
  return EncodingLadder({kbps(560), kbps(750), kbps(1050), kbps(1750),
                         kbps(2350), kbps(3000), kbps(5000)});
}

double EncodingLadder::rate_bps(std::size_t i) const {
  BBA_ASSERT(i < rates_bps_.size(), "rate index out of range");
  return rates_bps_[i];
}

std::size_t EncodingLadder::up(std::size_t i) const {
  BBA_ASSERT(i < rates_bps_.size(), "rate index out of range");
  return i + 1 < rates_bps_.size() ? i + 1 : i;
}

std::size_t EncodingLadder::down(std::size_t i) const {
  BBA_ASSERT(i < rates_bps_.size(), "rate index out of range");
  return i > 0 ? i - 1 : 0;
}

std::size_t EncodingLadder::highest_not_above(double bps) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < rates_bps_.size(); ++i) {
    if (rates_bps_[i] <= bps) best = i;
  }
  return best;
}

std::size_t EncodingLadder::lowest_not_below(double bps) const {
  for (std::size_t i = 0; i < rates_bps_.size(); ++i) {
    if (rates_bps_[i] >= bps) return i;
  }
  return max_index();
}

std::size_t EncodingLadder::highest_below(double bps) const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < rates_bps_.size(); ++i) {
    if (rates_bps_[i] < bps) best = i;
  }
  return best;
}

std::size_t EncodingLadder::lowest_above(double bps) const {
  for (std::size_t i = 0; i < rates_bps_.size(); ++i) {
    if (rates_bps_[i] > bps) return i;
  }
  return max_index();
}

}  // namespace bba::media
