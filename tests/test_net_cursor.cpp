// TraceCursor vs CapacityTrace bit-for-bit equivalence, segment_index_at
// edge cases, finish_time_s corner cases, and the allocation-free trace
// rebuild path (make_*_into + CapacityTrace::assign).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "net/capacity_trace.hpp"
#include "net/tcp_model.hpp"
#include "net/trace_cursor.hpp"
#include "net/trace_gen.hpp"
#include "util/rng.hpp"

namespace bba::net {
namespace {

TEST(SegmentIndexAt, BoundariesBelongToTheStartingSegment) {
  const CapacityTrace t({{10.0, 100.0}, {20.0, 200.0}, {5.0, 300.0}});
  EXPECT_EQ(t.segment_index_at(0.0), 0u);
  EXPECT_EQ(t.segment_index_at(9.999), 0u);
  // A boundary time belongs to the segment that starts there.
  EXPECT_EQ(t.segment_index_at(10.0), 1u);
  EXPECT_EQ(t.segment_index_at(29.999), 1u);
  EXPECT_EQ(t.segment_index_at(30.0), 2u);
}

TEST(SegmentIndexAt, CycleEndClampsToLastSegment) {
  const CapacityTrace t({{10.0, 100.0}, {20.0, 200.0}});
  EXPECT_EQ(t.segment_index_at(t.cycle_duration_s()), 1u);
}

TEST(SegmentIndexAt, SingleSegmentTrace) {
  const CapacityTrace t({{7.5, 123.0}});
  EXPECT_EQ(t.segment_index_at(0.0), 0u);
  EXPECT_EQ(t.segment_index_at(3.0), 0u);
  EXPECT_EQ(t.segment_index_at(7.5), 0u);
}

TEST(SegmentIndexAt, ZeroRateSegmentsAreOrdinarySegments) {
  const CapacityTrace t({{10.0, 100.0}, {30.0, 0.0}, {10.0, 50.0}});
  EXPECT_EQ(t.segment_index_at(15.0), 1u);
  EXPECT_EQ(t.segment_index_at(10.0), 1u);
  EXPECT_EQ(t.segment_index_at(40.0), 2u);
  EXPECT_DOUBLE_EQ(t.rate_at_bps(15.0), 0.0);
}

TEST(FinishTime, ExactWholeCycleMultiples) {
  const CapacityTrace t({{10.0, 100.0}, {10.0, 300.0}});  // 4000 bits/cycle
  // bits == k * cycle_bits exercises the exact-multiple guard: the skip
  // must leave one cycle for the segment walk instead of overshooting.
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 4000.0), 20.0);
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 8000.0), 40.0);
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 4000.0 * 57), 20.0 * 57);
  // Starting mid-cycle with exactly the rest of the cycle's bits.
  EXPECT_DOUBLE_EQ(t.finish_time_s(10.0, 3000.0), 20.0);
}

TEST(FinishTime, PermanentOutageNeverFinishes) {
  const CapacityTrace dead({{10.0, 0.0}});  // loops, cycle_bits == 0
  EXPECT_TRUE(std::isinf(dead.finish_time_s(0.0, 1.0)));
  EXPECT_TRUE(std::isinf(dead.finish_time_s(5.0, 1.0)));
  // Starting past the first cycle still wraps, still never finishes.
  EXPECT_TRUE(std::isinf(dead.finish_time_s(25.0, 1.0)));
  // Zero bits finish instantly even on a dead link.
  EXPECT_DOUBLE_EQ(dead.finish_time_s(5.0, 0.0), 5.0);
}

TEST(FinishTime, NonLoopingExhaustion) {
  const CapacityTrace t({{10.0, 100.0}, {10.0, 300.0}}, /*loop=*/false);
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 4000.0), 20.0);  // exactly drained
  EXPECT_TRUE(std::isinf(t.finish_time_s(0.0, 4000.0 + 1e-9)));
  EXPECT_TRUE(std::isinf(t.finish_time_s(20.0, 1.0)));  // starts past the end
  EXPECT_TRUE(std::isinf(t.finish_time_s(15.0, 1501.0)));
  EXPECT_DOUBLE_EQ(t.finish_time_s(15.0, 1500.0), 20.0);
}

TEST(FinishTime, ZeroRateHeadSegment) {
  const CapacityTrace t({{30.0, 0.0}, {10.0, 100.0}});
  EXPECT_DOUBLE_EQ(t.finish_time_s(0.0, 500.0), 35.0);
  // A download landing exactly on the outage boundary waits it out.
  EXPECT_DOUBLE_EQ(t.finish_time_s(30.0, 1000.0), 40.0);
}

// Builds a battery of traces covering the structural corner cases.
std::vector<CapacityTrace> test_traces() {
  std::vector<CapacityTrace> traces;
  traces.push_back(CapacityTrace::constant(2e6));
  traces.push_back(CapacityTrace({{10.0, 100.0}, {10.0, 300.0}}));
  traces.push_back(CapacityTrace({{10.0, 100.0}, {30.0, 0.0}, {5.0, 1e6}}));
  traces.push_back(CapacityTrace({{10.0, 100.0}, {10.0, 300.0}},
                                 /*loop=*/false));
  util::Rng rng(99);
  MarkovTraceConfig cfg;
  cfg.duration_s = 900.0;
  traces.push_back(make_markov_trace(cfg, rng));
  OutageConfig outages;
  outages.mean_interval_s = 120.0;
  traces.push_back(with_outages(traces.back(), outages, rng));
  return traces;
}

TEST(TraceCursor, MonotoneQueryStreamIsBitIdentical) {
  for (const CapacityTrace& t : test_traces()) {
    TraceCursor cursor(t);
    util::Rng rng(7);
    double now = 0.0;
    for (int i = 0; i < 400; ++i) {
      now += rng.uniform(0.0, t.cycle_duration_s() * 0.2);
      switch (i % 4) {
        case 0:
          EXPECT_EQ(cursor.rate_at_bps(now), t.rate_at_bps(now));
          break;
        case 1: {
          const double bits = rng.uniform(0.0, 1e7);
          EXPECT_EQ(cursor.finish_time_s(now, bits),
                    t.finish_time_s(now, bits));
          break;
        }
        case 2: {
          const double t1 = now + rng.uniform(0.0, 30.0);
          EXPECT_EQ(cursor.bits_between(now, t1), t.bits_between(now, t1));
          break;
        }
        default: {
          const double t1 = now + rng.uniform(0.0, 30.0);
          EXPECT_EQ(cursor.average_bps(now, t1), t.average_bps(now, t1));
          break;
        }
      }
    }
  }
}

TEST(TraceCursor, RandomRewindingStreamIsBitIdentical) {
  for (const CapacityTrace& t : test_traces()) {
    TraceCursor cursor(t);
    util::Rng rng(21);
    for (int i = 0; i < 400; ++i) {
      // Uniform over several cycles: successive queries rewind about half
      // the time, exercising the binary-search fallback.
      const double now = rng.uniform(0.0, t.cycle_duration_s() * 3.0);
      const double bits = rng.uniform(0.0, 1e7);
      EXPECT_EQ(cursor.rate_at_bps(now), t.rate_at_bps(now));
      EXPECT_EQ(cursor.finish_time_s(now, bits), t.finish_time_s(now, bits));
    }
  }
}

TEST(TraceCursor, CornerTimesAreBitIdentical) {
  for (const CapacityTrace& t : test_traces()) {
    TraceCursor cursor(t);
    const double cycle = t.cycle_duration_s();
    std::vector<double> times = {0.0, cycle, cycle * 2.0, cycle * 0.5};
    for (std::size_t i = 0; i < t.time_prefix().size(); ++i) {
      times.push_back(t.time_prefix()[i]);  // every segment boundary
    }
    for (const double at : times) {
      EXPECT_EQ(cursor.rate_at_bps(at), t.rate_at_bps(at));
      EXPECT_EQ(cursor.finish_time_s(at, 12345.0),
                t.finish_time_s(at, 12345.0));
      EXPECT_EQ(cursor.finish_time_s(at, t.cycle_bits()),
                t.finish_time_s(at, t.cycle_bits()));
      EXPECT_EQ(cursor.bits_between(at, at + cycle),
                t.bits_between(at, at + cycle));
    }
  }
}

TEST(TraceCursor, TcpModelOverloadIsBitIdentical) {
  util::Rng rng(31);
  MarkovTraceConfig cfg;
  cfg.duration_s = 600.0;
  const CapacityTrace t = make_markov_trace(cfg, rng);
  const TcpModelConfig tcp_cfg;
  const TcpDownloadModel model(tcp_cfg);
  TraceCursor cursor(t);
  double now = 0.0;
  double prev_finish = -1.0;
  for (int i = 0; i < 200; ++i) {
    const double bits = rng.uniform(1e5, 2e7);
    const double idle = prev_finish < 0.0
                            ? std::numeric_limits<double>::infinity()
                            : now - prev_finish;
    const double via_trace = model.finish_time_s(t, now, bits, idle);
    const double via_cursor = model.finish_time_s(cursor, now, bits, idle);
    EXPECT_EQ(via_cursor, via_trace);
    prev_finish = via_trace;
    now = via_trace + (i % 3 == 0 ? rng.uniform(0.0, 5.0) : 0.0);
  }
}

void expect_same_segments(const CapacityTrace& a, const CapacityTrace& b) {
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_EQ(a.segments()[i].duration_s, b.segments()[i].duration_s);
    EXPECT_EQ(a.segments()[i].rate_bps, b.segments()[i].rate_bps);
  }
  EXPECT_EQ(a.loops(), b.loops());
  EXPECT_EQ(a.cycle_duration_s(), b.cycle_duration_s());
  EXPECT_EQ(a.cycle_bits(), b.cycle_bits());
}

TEST(TraceRebuild, MarkovIntoMatchesValueVariant) {
  MarkovTraceConfig cfg;
  cfg.duration_s = 600.0;
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const CapacityTrace fresh = make_markov_trace(cfg, rng_a);
  std::vector<CapacityTrace::Segment> buf;
  make_markov_trace_into(cfg, rng_b, buf);
  const CapacityTrace rebuilt(buf, /*loop=*/true);
  expect_same_segments(fresh, rebuilt);
  // Identical rng consumption: both streams are in the same state.
  EXPECT_EQ(rng_a.uniform(0.0, 1.0), rng_b.uniform(0.0, 1.0));
}

TEST(TraceRebuild, OutagesIntoMatchesValueVariant) {
  MarkovTraceConfig cfg;
  cfg.duration_s = 600.0;
  OutageConfig outages;
  outages.mean_interval_s = 90.0;
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  const CapacityTrace base_a = make_markov_trace(cfg, rng_a);
  const CapacityTrace fresh = with_outages(base_a, outages, rng_a);

  TraceScratch scratch;
  make_markov_trace_into(cfg, rng_b, scratch.segments);
  insert_outages(scratch.segments, outages, rng_b, scratch.outage_segments);
  const CapacityTrace rebuilt(scratch.outage_segments, /*loop=*/true);
  expect_same_segments(fresh, rebuilt);
  EXPECT_EQ(rng_a.uniform(0.0, 1.0), rng_b.uniform(0.0, 1.0));
}

TEST(TraceRebuild, AssignReusesOneTraceAcrossSessions) {
  // The harness pattern: one CapacityTrace instance rebuilt per session
  // through the same scratch, compared against fresh construction.
  MarkovTraceConfig cfg;
  cfg.duration_s = 300.0;
  CapacityTrace reused = CapacityTrace::constant(1.0);
  TraceScratch scratch;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    const CapacityTrace fresh = make_markov_trace(cfg, rng_a);
    make_markov_trace_into(cfg, rng_b, scratch.segments);
    reused.assign(scratch.segments, /*loop=*/true);
    expect_same_segments(fresh, reused);
    // Behave identically too, not just structurally.
    TraceCursor cursor(reused);
    EXPECT_EQ(cursor.finish_time_s(3.0, 1e6), fresh.finish_time_s(3.0, 1e6));
  }
}

}  // namespace
}  // namespace bba::net
