#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "util/assert.hpp"

namespace bba::runtime {

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    // Worker i owns slot i+1; the caller is slot 0.
    workers_.emplace_back([this, slot = i + 1] { worker_main(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Loop& loop, std::size_t slot) {
  // Pool-level metrics bypass the thread-local binding (workers only bind
  // inside the body, around each unit of work) and write straight to this
  // slot's shard. Null when observability is off: no stores, no spans.
  obs::Observability* o = obs::global();
  obs::MetricsRegistry::Slot* ms =
      (o != nullptr && o->metrics != nullptr) ? &o->metrics->slot_at(slot)
                                              : nullptr;
  obs::ScopedTimer span(o != nullptr ? o->profiler.get() : nullptr, slot,
                        "pool.participate");
  if (ms != nullptr) ms->count(obs::Counter::kPoolLoops);
  for (;;) {
    const std::size_t start =
        loop.next.fetch_add(loop.grain, std::memory_order_relaxed);
    if (start >= loop.end) return;
    if (ms != nullptr) {
      ms->count(obs::Counter::kPoolChunksClaimed);
      ms->observe(obs::Hist::kExecutorBacklog,
                  static_cast<double>(loop.end - start));
    }
    if (loop.failed.load(std::memory_order_relaxed)) continue;  // drain
    const std::size_t stop = std::min(loop.end, start + loop.grain);
    try {
      if (loop.slot_body != nullptr) {
        for (std::size_t i = start; i < stop; ++i) (*loop.slot_body)(i, slot);
      } else {
        for (std::size_t i = start; i < stop; ++i) (*loop.body)(i);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(loop.error_mu);
      if (!loop.error) loop.error = std::current_exception();
      loop.failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_main(std::size_t slot) {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Loop> loop;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      loop = loop_;
    }
    if (!loop) continue;  // loop already retired between notify and wake
    loop->in_flight.fetch_add(1, std::memory_order_relaxed);
    run_chunks(*loop, slot);
    if (loop->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_loop(const std::shared_ptr<Loop>& loop) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    loop_ = loop;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(*loop, 0);  // the caller participates as slot 0

  {
    // All indices are claimed once run_chunks returns; wait for workers
    // still executing their final chunk. Workers that wake later claim
    // nothing (the cursor is past `end`) and never touch the body.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return loop->in_flight.load(std::memory_order_acquire) == 0;
    });
    loop_ = nullptr;
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
  BBA_ASSERT(body != nullptr, "parallel_for requires a body");
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (grain == 0) {
    // Aim for ~4 chunks per thread so dynamic scheduling can balance
    // uneven bodies without excessive cursor contention.
    grain = std::max<std::size_t>(1, count / (size() * 4));
  }
  // Run inline when there is nobody to share with or nothing to share.
  if (workers_.empty() || count <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->next.store(begin, std::memory_order_relaxed);
  loop->end = end;
  loop->grain = grain;
  loop->body = &body;
  run_loop(loop);
}

void ThreadPool::parallel_for_slots(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  BBA_ASSERT(body != nullptr, "parallel_for_slots requires a body");
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, count / (size() * 4));
  }
  // Inline: the caller is the only executor, so everything is slot 0.
  if (workers_.empty() || count <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i, 0);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->next.store(begin, std::memory_order_relaxed);
  loop->end = end;
  loop->grain = grain;
  loop->slot_body = &body;
  run_loop(loop);
}

}  // namespace bba::runtime
