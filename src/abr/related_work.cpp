#include "abr/related_work.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::abr {

PidAbr::PidAbr(PidConfig cfg)
    : cfg_(cfg), estimator_(cfg.estimator_window) {
  BBA_ASSERT(cfg_.target_buffer_s > 0.0, "buffer set-point must be > 0");
  BBA_ASSERT(cfg_.adjustment_min > 0.0 &&
                 cfg_.adjustment_max > cfg_.adjustment_min,
             "adjustment clamp invalid");
}

void PidAbr::reset() {
  estimator_.reset();
  integral_s_ = 0.0;
  adjustment_ = 1.0;
}

std::size_t PidAbr::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();
  if (obs.last_throughput_bps > 0.0) {
    estimator_.add_sample(obs.last_throughput_bps, obs.last_download_s);
  }
  if (!estimator_.has_estimate()) {
    return std::min(cfg_.start_index, ladder.max_index());
  }
  // PI on the buffer error: above the set-point we may exceed the
  // estimate (draining toward the set-point), below it we undershoot to
  // refill. The integral term removes steady-state error.
  const double error_s = obs.buffer_s - cfg_.target_buffer_s;
  integral_s_ += error_s;
  // Anti-windup: bound the integral so it cannot dominate forever.
  integral_s_ = std::clamp(integral_s_, -3000.0, 3000.0);
  adjustment_ = std::clamp(
      1.0 + cfg_.kp * error_s + cfg_.ki * integral_s_,
      cfg_.adjustment_min, cfg_.adjustment_max);
  const double target_bps = adjustment_ * estimator_.estimate_bps();

  // "Smooth" quantization: step at most one level per chunk.
  const std::size_t prev = obs.chunk_index == 0
                               ? std::min(cfg_.start_index, ladder.max_index())
                               : std::min(obs.prev_rate_index,
                                          ladder.max_index());
  const std::size_t unconstrained = ladder.highest_not_above(target_bps);
  if (unconstrained > prev) return ladder.up(prev);
  if (unconstrained < prev) return ladder.down(prev);
  return prev;
}

ElasticAbr::ElasticAbr(ElasticConfig cfg)
    : cfg_(cfg), estimator_(cfg.estimator_window) {
  BBA_ASSERT(cfg_.target_buffer_s > 0.0, "buffer set-point must be > 0");
  BBA_ASSERT(cfg_.k1 > 0.0 && cfg_.k2 >= 0.0, "controller gains invalid");
}

void ElasticAbr::reset() {
  estimator_.reset();
  integral_s_ = 0.0;
}

std::size_t ElasticAbr::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();
  if (obs.last_throughput_bps > 0.0) {
    estimator_.add_sample(obs.last_throughput_bps, obs.last_download_s);
  }
  if (!estimator_.has_estimate()) {
    return std::min(cfg_.start_index, ladder.max_index());
  }
  // Feedback linearization: pick r so that the closed-loop buffer obeys
  // q' = -k1 e - k2 \int e, giving r = C / (1 + k1 e + k2 ie). With the
  // buffer above the set-point the denominator shrinks -> higher rate.
  const double error_s = obs.buffer_s - cfg_.target_buffer_s;
  integral_s_ = std::clamp(integral_s_ + error_s, -2000.0, 2000.0);
  const double denom =
      std::max(0.4, 1.0 - cfg_.k1 * error_s - cfg_.k2 * integral_s_);
  const double target_bps = estimator_.estimate_bps() / denom;
  return ladder.highest_not_above(target_bps);
}

}  // namespace bba::abr
