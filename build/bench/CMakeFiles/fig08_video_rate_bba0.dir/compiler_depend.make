# Empty compiler generated dependencies file for fig08_video_rate_bba0.
# This may be replaced when dependencies are built.
