#include "core/bba1.hpp"

#include <algorithm>
#include <typeinfo>

#include "util/assert.hpp"

namespace bba::core {

Bba1::Bba1(Bba1Config cfg) : cfg_(cfg) {
  BBA_ASSERT(cfg_.upper_knee_fraction > 0.0 && cfg_.upper_knee_fraction <= 1.0,
             "upper knee fraction must be in (0, 1]");
  BBA_ASSERT(cfg_.min_cushion_s > 0.0, "min cushion must be > 0");
}

void Bba1::reset() {
  effective_reservoir_s_ = cfg_.reservoir.min_s;
  outage_s_ = 0.0;
  prev_buffer_s_ = 0.0;
  has_prev_buffer_ = false;
  outage_accrual_enabled_ = true;
}

std::size_t Bba1::prev_index(const abr::Observation& obs) const {
  const auto max_index = obs.video->ladder().max_index();
  if (obs.chunk_index == 0) return std::min(cfg_.start_index, max_index);
  return std::min(obs.prev_rate_index, max_index);
}

void Bba1::update_state(const abr::Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();

  // Sec. 7.1: accrue outage protection per downloaded chunk while the
  // buffer is rising and not yet 75% full.
  if (cfg_.outage_protection && outage_accrual_enabled_ && has_prev_buffer_ &&
      obs.buffer_s > prev_buffer_s_ &&
      obs.buffer_s < cfg_.outage_accrue_below_fraction * obs.buffer_max_s) {
    outage_s_ = std::min(outage_s_ + cfg_.outage_accrual_s, cfg_.outage_cap_s);
  }
  prev_buffer_s_ = obs.buffer_s;
  has_prev_buffer_ = true;

  const double dynamic = compute_reservoir_s(
      obs.video->chunks(), ladder.min_index(), ladder.rmin_bps(),
      obs.chunk_index, cfg_.reservoir);
  const double knee = cfg_.upper_knee_fraction * obs.buffer_max_s;
  double effective =
      std::min(dynamic + outage_s_, knee - cfg_.min_cushion_s);
  if (cfg_.monotone_reservoir) {
    effective = std::max(effective, effective_reservoir_s_);
  }
  effective_reservoir_s_ = effective;
}

ChunkMap Bba1::current_map(const abr::Observation& obs) const {
  const auto& video = *obs.video;
  const auto& ladder = video.ladder();
  const double knee = cfg_.upper_knee_fraction * obs.buffer_max_s;
  return ChunkMap(effective_reservoir_s_, knee,
                  video.chunks().mean_size_bits(ladder.min_index()),
                  video.chunks().mean_size_bits(ladder.max_index()));
}

std::size_t Bba1::map_suggestion(const abr::Observation& obs) const {
  const auto& video = *obs.video;
  const auto& ladder = video.ladder();
  const ChunkMap map = current_map(obs);
  if (obs.buffer_s <= map.reservoir_s()) return ladder.min_index();
  if (obs.buffer_s >= map.upper_knee_s()) return ladder.max_index();
  const double bits = map.max_chunk_bits(obs.buffer_s);
  const std::size_t k = obs.chunk_index;
  std::size_t best = ladder.min_index();
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (video.chunks().size_bits(i, k) <= bits) best = i;
  }
  return best;
}

std::size_t Bba1::filter_up_switch(const abr::Observation& /*obs*/,
                                   std::size_t candidate,
                                   std::size_t /*prev*/,
                                   double /*map_bits*/) {
  return candidate;
}

std::size_t Bba1::steady_choice(const abr::Observation& obs) {
  const auto& video = *obs.video;
  const auto& ladder = video.ladder();
  const ChunkMap map = current_map(obs);
  const std::size_t prev = prev_index(obs);
  const std::size_t k = obs.chunk_index;

  if (obs.buffer_s <= map.reservoir_s()) return ladder.min_index();
  if (obs.buffer_s >= map.upper_knee_s()) return ladder.max_index();

  const double bits = map.max_chunk_bits(obs.buffer_s);
  const std::size_t rate_plus = ladder.up(prev);
  const std::size_t rate_minus = ladder.down(prev);

  // Up barrier: the map's allowable size passes the size of the next
  // upcoming chunk at the next-highest rate.
  if (rate_plus != prev && bits >= video.chunks().size_bits(rate_plus, k)) {
    std::size_t candidate = prev;
    for (std::size_t i = 0; i < ladder.size(); ++i) {
      if (video.chunks().size_bits(i, k) < bits) candidate = i;
    }
    candidate = std::max(candidate, prev);
    return filter_up_switch(obs, candidate, prev, bits);
  }
  // Down barrier: the allowable size falls below the next chunk at the
  // next-lowest rate.
  if (rate_minus != prev && bits <= video.chunks().size_bits(rate_minus, k)) {
    std::size_t candidate = ladder.min_index();
    for (std::size_t i = ladder.size(); i-- > 0;) {
      if (video.chunks().size_bits(i, k) > bits) candidate = i;
    }
    return std::min(candidate, prev);
  }
  return prev;
}

std::size_t Bba1::choose_rate(const abr::Observation& obs) {
  update_state(obs);
  return steady_choice(obs);
}

bool Bba1::batch_profile(abr::BatchDecisionProfile* out) const {
  if (typeid(*this) != typeid(Bba1)) return false;
  abr::BatchDecisionProfile p;
  p.startup = false;
  p.lookahead_s = cfg_.reservoir.lookahead_s;
  p.reservoir_min_s = cfg_.reservoir.min_s;
  p.reservoir_max_s = cfg_.reservoir.max_s;
  p.cache_window_sums = cfg_.reservoir.cache_window_sums;
  p.upper_knee_fraction = cfg_.upper_knee_fraction;
  p.start_index = cfg_.start_index;
  p.monotone_reservoir = cfg_.monotone_reservoir;
  p.outage_protection = cfg_.outage_protection;
  p.outage_accrual_s = cfg_.outage_accrual_s;
  p.outage_cap_s = cfg_.outage_cap_s;
  p.outage_accrue_below_fraction = cfg_.outage_accrue_below_fraction;
  p.min_cushion_s = cfg_.min_cushion_s;
  *out = p;
  return true;
}

}  // namespace bba::core
