// Incremental capacity-trace generation for the batched session kernel.
//
// The scalar hot path materializes a session's whole Markov trace (7200 s,
// ~700 segments) before the player consumes, typically, the first tenth of
// it. TraceStream generates the identical committed segment sequence --
// same rng consumption, same prefix arithmetic as make_markov_trace_into
// followed by CapacityTrace::assign -- but only as far as consumers ask,
// which removes most of the generation cost from the per-session budget.
//
// Outage splicing (Population sessions with env.has_outages) is deliberately
// NOT supported here: insert_outages draws from the same kTrace rng *after*
// every Markov segment has been generated, so a lazy generator cannot know
// the outage draws without defeating its own laziness. Those sessions
// materialize their trace exactly as before and run through FixedSource.
//
// LaneCursor is the batched kernel's counterpart of net::TraceCursor:
// bit-identical finish times AND identical query/rewind tallies over either
// source (enforced by tests/test_sim_batch.cpp), with the walk running over
// raw prefix arrays the lane caches for its whole lifetime.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "net/capacity_trace.hpp"
#include "net/trace_gen.hpp"
#include "util/rng.hpp"

namespace bba::net {

/// Lazily generated Markov capacity trace in structure-of-arrays form.
/// Committed segments are exposed through stable raw pointers into
/// preallocated buffers: a commit is three stores and an increment, and
/// consumers can cache tp/bp/rate for the stream's whole lifetime.
/// tp (segment start times) and bp (bits prefix) carry n+1 entries.
struct TraceStream {
  double duration_s = 0.0, mean_dwell_s = 0.0, mu = 0.0, sigma = 0.0,
         min_bps = 0.0, max_bps = 0.0;
  util::Rng rng{0};
  double base_t = 0.0;

  std::vector<double> tp_buf, bp_buf, rate_buf;
  double* tp = nullptr;
  double* bp = nullptr;
  double* rate = nullptr;
  std::size_t n = 0;  ///< committed segments; tp/bp valid through index n
  bool done = false;
  double cycle_s = 0.0, cycle_bits = 0.0;

  /// Sizes the buffers for any trace of at most `max_duration_s`: base
  /// dwells are clamped to >= 0.5 s, so duration/0.5 bounds the segment
  /// count. Sized once per lane, reused forever.
  void reserve_for(double max_duration_s);

  /// Rebinds the stream to a fresh (config, rng) pair. No allocation once
  /// the buffers have grown to the workload's longest trace.
  void reset(const MarkovTraceConfig& cfg, util::Rng r);

  std::size_t num_segments() const { return n; }

  /// Generates and commits one Markov segment (or finishes the trace).
  void step_one();

  /// Commits segments until the prefix extends strictly beyond `pos` (or
  /// the trace is finished).
  inline void ensure_beyond(double pos) {
    while (!done && tp[n] <= pos) step_one();
  }
  void ensure_done() {
    while (!done) step_one();
  }
};

/// Trace-source policies for the templated LaneCursor. Both expose the same
/// inline surface; StreamSource generates on demand, FixedSource wraps a
/// materialized CapacityTrace (strided Segment rates).
struct StreamSource {
  TraceStream* s = nullptr;

  static constexpr std::size_t kBurst = 16;

  inline const double* tp() const { return s->tp; }
  inline const double* bp() const { return s->bp; }
  inline double rate_at(std::size_t i) const { return s->rate[i]; }
  inline std::size_t count() const { return s->n; }
  inline bool done() const { return s->done; }
  inline double cycle_s() const { return s->cycle_s; }
  inline double cycle_bits() const { return s->cycle_bits; }
  inline void ensure_beyond(double pos) {
    if (!s->done && s->tp[s->n] <= pos) s->ensure_beyond(pos);
  }
  inline void ensure_done() { s->ensure_done(); }
  /// Commit more segments after a walk exhausted the prefix.
  inline void gen_burst() {
    for (std::size_t i = 0; i < kBurst && !s->done; ++i) s->step_one();
  }
};

struct FixedSource {
  const double* tp_ = nullptr;
  const double* bp_ = nullptr;
  const double* rate_ = nullptr;
  std::size_t count_ = 0;
  double cycle_s_ = 0.0, cycle_bits_ = 0.0;

  void bind(const CapacityTrace& t) {
    tp_ = t.time_prefix().data();
    bp_ = t.bits_prefix_table().data();
    rate_ = &t.segments().data()->rate_bps;
    count_ = t.segments().size();
    cycle_s_ = t.cycle_duration_s();
    cycle_bits_ = t.cycle_bits();
  }
  inline const double* tp() const { return tp_; }
  inline const double* bp() const { return bp_; }
  inline double rate_at(std::size_t i) const {
    // Segment is {duration_s, rate_bps}: stride 2 doubles.
    return rate_[i * 2];
  }
  inline std::size_t count() const { return count_; }
  inline bool done() const { return true; }
  inline double cycle_s() const { return cycle_s_; }
  inline double cycle_bits() const { return cycle_bits_; }
  inline void ensure_beyond(double) {}
  inline void ensure_done() {}
  inline void gen_burst() {}
};

/// Stateful segment cursor over a StreamSource or FixedSource, replicating
/// net::TraceCursor::finish_time_s bit for bit on looping traces --
/// including the kCursorQueries / kCursorRewinds tallies (the scalar cursor
/// seeks twice per finish_time_s call: once for the bits prefix, once to
/// start the walk; seek2 deduplicates the walk but counts both).
struct LaneCursor {
  std::size_t hint = 0;
  std::uint64_t queries = 0, rewinds = 0;

  template <class Src>
  static inline std::size_t bsearch(const Src& tr, double pos) {
    const double* begin = tr.tp();
    const double* end = begin + tr.count() + 1;
    const double* it = std::upper_bound(begin, end, pos);
    std::size_t i = static_cast<std::size_t>(it - begin) - 1;
    return std::min(i, tr.count() - 1);
  }

  /// The two scalar seeks of one finish_time_s call, deduplicated: counts
  /// queries += 2 and evaluates the first seek's rewind predicate, but
  /// walks once (the second scalar seek starts from the hint the first one
  /// just wrote, so it can never rewind).
  template <class Src>
  inline std::size_t seek2(const Src& tr, double pos) {
    queries += 2;
    const double* tp = tr.tp();
    const std::size_t last = tr.count() - 1;
    std::size_t i = hint;
    if (i > last || tp[i] > pos) {
      ++rewinds;
      i = bsearch(tr, pos);
    } else {
      while (i < last && tp[i + 1] <= pos) ++i;
    }
    hint = i;
    return i;
  }

  /// Verbatim TraceCursor::finish_time_s over the fully generated trace,
  /// used for the wrap (slow) path and the rare FP-residue fallback.
  template <class Src>
  double finish_slow(Src& tr, double pos, double cycles_done, double bits,
                     double bp_at_pos) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const double cycle_s = tr.cycle_s();
    const double cycle_bits = tr.cycle_bits();
    double remaining = bits;
    const double avail0 = cycle_bits - bp_at_pos;
    bool wrapped = false;
    if (avail0 < remaining) {
      wrapped = true;
      remaining -= avail0;
      cycles_done += 1.0;
      pos = 0.0;
      if (cycle_bits <= 0.0) return kInf;
      const double whole = std::floor(remaining / cycle_bits);
      if (whole > 0.0 && whole * cycle_bits < remaining) {
        cycles_done += whole;
        remaining -= whole * cycle_bits;
      } else if (whole > 0.0) {
        cycles_done += whole - 1.0;
        remaining -= (whole - 1.0) * cycle_bits;
      }
    }
    // The scalar path re-seeks here (its walk seek). On the wrap path that
    // is a real second seek at pos == 0 whose rewind predicate fires
    // whenever the hint segment starts after 0.
    std::size_t idx;
    const double* tp = tr.tp();
    if (wrapped) {
      const std::size_t last = tr.count() - 1;
      if (hint > last || tp[hint] > pos) {
        ++rewinds;
        idx = bsearch(tr, pos);
      } else {
        idx = hint;
        while (idx < last && tp[idx + 1] <= pos) ++idx;
      }
      hint = idx;
    } else {
      // FP-residue fallback: seek2 already walked to idx(pos) and counted
      // both queries; recompute without recounting.
      idx = bsearch(tr, pos);
    }
    double t = pos;
    while (true) {
      const double r = tr.rate_at(idx);
      const double seg_end = tp[idx + 1];
      const double span = seg_end - t;
      const double avail = r * span;
      if (avail >= remaining && r > 0.0) {
        t += remaining / r;
        hint = idx;
        return cycles_done * cycle_s + t;
      }
      remaining -= avail;
      t = seg_end;
      ++idx;
      if (idx == tr.count()) {
        idx = 0;
        t = 0.0;
        cycles_done += 1.0;
        if (cycle_bits <= 0.0) return kInf;
      }
    }
  }

  /// Bit-identical to TraceCursor::finish_time_s on the materialized trace
  /// (looping traces only -- the caller gates on trace.loops()), including
  /// query/rewind tallies. The walk is a tight loop over the committed
  /// prefix; the source is only asked to generate when the walk exhausts
  /// it.
  template <class Src>
  double finish_time_s(Src& tr, double start_s, double bits) {
    if (bits == 0.0) return start_s;
    double cycles_done = 0.0;
    double pos = start_s;
    tr.ensure_beyond(pos);
    if (tr.done() && pos >= tr.cycle_s()) {
      cycles_done = std::floor(pos / tr.cycle_s());
      pos -= cycles_done * tr.cycle_s();
      tr.ensure_beyond(pos);
    }
    const std::size_t idx0 = seek2(tr, pos);
    if (tr.done()) {
      const double bp_at_pos =
          tr.bp()[idx0] + tr.rate_at(idx0) * (pos - tr.tp()[idx0]);
      const double avail = tr.cycle_bits() - bp_at_pos;
      if (avail < bits) {
        return finish_slow(tr, pos, cycles_done, bits, bp_at_pos);
      }
    }
    double remaining = bits;
    std::size_t idx = idx0;
    double t = pos;
    while (true) {
      const std::size_t count = tr.count();
      const double* tp = tr.tp();
      while (idx < count) {
        const double r = tr.rate_at(idx);
        const double seg_end = tp[idx + 1];
        const double avail = r * (seg_end - t);
        if (avail >= remaining && r > 0.0) {
          t += remaining / r;
          hint = idx;
          return cycles_done == 0.0 ? t : cycles_done * tr.cycle_s() + t;
        }
        remaining -= avail;
        t = seg_end;
        ++idx;
      }
      if (tr.done()) {
        const double bp_at_pos =
            tr.bp()[idx0] + tr.rate_at(idx0) * (pos - tr.tp()[idx0]);
        return finish_slow(tr, pos, cycles_done, bits, bp_at_pos);
      }
      tr.gen_burst();
    }
  }
};

}  // namespace bba::net
