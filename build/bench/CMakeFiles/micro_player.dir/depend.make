# Empty dependencies file for micro_player.
# This may be replaced when dependencies are built.
