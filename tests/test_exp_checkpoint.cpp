// Checkpoint/resume and sharded runs (exp/checkpoint.hpp): container
// round-trip bit-exactness, corruption detection, the
// run_ab_test_checkpointed equivalence contract (chunked / killed+resumed
// / sharded+merged runs all land on the uninterrupted run's bits), and
// resume validation of the run identity.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/abtest.hpp"
#include "exp/checkpoint.hpp"
#include "exp/population.hpp"
#include "media/video.hpp"
#include "obs/timeline.hpp"
#include "sim/metrics.hpp"

namespace bba::exp {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

bool cells_bit_equal(const AbTestResult& a, const AbTestResult& b) {
  if (a.group_names != b.group_names) return false;
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t g = 0; g < a.cells.size(); ++g) {
    if (a.cells[g].size() != b.cells[g].size()) return false;
    for (std::size_t d = 0; d < a.cells[g].size(); ++d) {
      for (std::size_t w = 0; w < a.cells[g][d].size(); ++w) {
        const WindowMetrics& x = a.cells[g][d][w];
        const WindowMetrics& y = b.cells[g][d][w];
        if (bits(x.play_hours) != bits(y.play_hours) ||
            bits(x.rebuffer_count) != bits(y.rebuffer_count) ||
            bits(x.rebuffer_s) != bits(y.rebuffer_s) ||
            bits(x.avg_rate_bps) != bits(y.avg_rate_bps) ||
            bits(x.startup_rate_bps) != bits(y.startup_rate_bps) ||
            bits(x.steady_rate_bps) != bits(y.steady_rate_bps) ||
            bits(x.switch_count) != bits(y.switch_count) ||
            bits(x.steady_play_hours) != bits(y.steady_play_hours) ||
            bits(x.fault_stall_count) != bits(y.fault_stall_count) ||
            x.sessions != y.sessions) {
          return false;
        }
      }
    }
  }
  return true;
}

TEST(CheckpointOptions, ParseShard) {
  CheckpointOptions o;
  EXPECT_TRUE(o.parse_shard("1/1"));
  EXPECT_EQ(o.shard_index, 1u);
  EXPECT_EQ(o.shard_count, 1u);
  EXPECT_TRUE(o.parse_shard("3/8"));
  EXPECT_EQ(o.shard_index, 3u);
  EXPECT_EQ(o.shard_count, 8u);
  EXPECT_TRUE(o.sharded());

  for (const char* bad :
       {"", "0/4", "5/4", "a/b", "2", "2/", "/3", "1/0", "1/2/3", "-1/2"}) {
    CheckpointOptions fresh;
    EXPECT_FALSE(fresh.parse_shard(bad)) << bad;
  }
}

/// A fixed-run checkpoint with adversarial double bit patterns, a
/// populated timeline, and trace state -- every section exercised.
Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.kind = 0;
  ck.seed = 0xdeadbeef;
  ck.days = 2;
  ck.windows_per_day = kWindowsPerDay;
  ck.sessions_per_window = 5;
  ck.total_keys = 2 * kWindowsPerDay * 5;
  ck.cursor = 37;
  ck.groups = {"control", "bba2"};
  ck.cells.assign(2, std::vector<std::vector<WindowMetrics>>(
                         2, std::vector<WindowMetrics>(kWindowsPerDay)));
  // Bit patterns that punish any text round trip: negative zero, a
  // denormal, a value with no short decimal form, and huge magnitudes.
  WindowMetrics& cell = ck.cells[1][0][3];
  cell.play_hours = 0.1;
  cell.rebuffer_count = -0.0;
  cell.rebuffer_s = 5e-324;
  cell.avg_rate_bps = 1.0 / 3.0;
  cell.startup_rate_bps = 1e300;
  cell.steady_rate_bps = -2.5e-10;
  cell.switch_count = 3.0;
  cell.steady_play_hours = 0.30000000000000004;
  cell.fault_stall_count = 1.0;
  cell.sessions = 4;
  ck.cells[0][1][11].sessions = 1;
  ck.cells[0][1][11].play_hours = 2.0;

  ck.has_timeline = true;
  ck.timeline.begin_run(ck.seed, ck.groups, 2, kWindowsPerDay);
  sim::SessionMetrics m;
  m.play_s = 1234.5;
  m.join_s = 1.25;
  m.rebuffer_count = 2;
  m.rebuffer_s = 3.5;
  m.avg_rate_bps = 2.1e6;
  m.avg_buffer_s = 17.0;
  m.switch_count = 5;
  ck.timeline.record(0, 3, 1, m);
  m.abandoned = true;
  ck.timeline.record(1, 11, 0, m);

  ck.has_trace = true;
  ck.trace.format = "jsonl";
  ck.trace.sample = 4;
  ck.trace.anomaly_rebuffer_s = 30.0;
  ck.trace.sessions_written = 9;
  ck.trace.anomalies_written = 2;
  ck.trace.bytes_written = 4096;
  ck.trace.write_errors = 0;
  ck.trace.file_size = 4096;
  return ck;
}

TEST(CheckpointContainer, FixedRunRoundTripIsBitExact) {
  const Checkpoint ck = sample_checkpoint();
  const std::string bytes = serialize_checkpoint(ck);

  Checkpoint back;
  std::string error;
  ASSERT_TRUE(parse_checkpoint(bytes, &back, &error)) << error;
  EXPECT_EQ(back.kind, ck.kind);
  EXPECT_EQ(back.seed, ck.seed);
  EXPECT_EQ(back.days, ck.days);
  EXPECT_EQ(back.windows_per_day, ck.windows_per_day);
  EXPECT_EQ(back.sessions_per_window, ck.sessions_per_window);
  EXPECT_EQ(back.total_keys, ck.total_keys);
  EXPECT_EQ(back.cursor, ck.cursor);
  EXPECT_FALSE(back.complete());
  EXPECT_EQ(back.groups, ck.groups);

  const WindowMetrics& a = ck.cells[1][0][3];
  const WindowMetrics& b = back.cells[1][0][3];
  EXPECT_EQ(bits(a.play_hours), bits(b.play_hours));
  EXPECT_EQ(bits(a.rebuffer_count), bits(b.rebuffer_count));  // -0.0 kept
  EXPECT_EQ(bits(a.rebuffer_s), bits(b.rebuffer_s));          // denormal
  EXPECT_EQ(bits(a.avg_rate_bps), bits(b.avg_rate_bps));
  EXPECT_EQ(bits(a.startup_rate_bps), bits(b.startup_rate_bps));
  EXPECT_EQ(bits(a.steady_rate_bps), bits(b.steady_rate_bps));
  EXPECT_EQ(bits(a.steady_play_hours), bits(b.steady_play_hours));
  EXPECT_EQ(a.sessions, b.sessions);

  ASSERT_TRUE(back.has_timeline);
  EXPECT_EQ(back.timeline.to_json(), ck.timeline.to_json());
  ASSERT_TRUE(back.has_trace);
  EXPECT_EQ(back.trace.format, "jsonl");
  EXPECT_EQ(back.trace.sample, 4u);
  EXPECT_EQ(back.trace.file_size, 4096u);

  // Serialization is a pure function of the state: re-serializing the
  // parsed checkpoint reproduces the exact bytes.
  EXPECT_EQ(serialize_checkpoint(back), bytes);
}

TEST(CheckpointContainer, SeqRunRoundTrip) {
  Checkpoint ck;
  ck.kind = 1;
  ck.seed = 7;
  ck.days = 1;
  ck.windows_per_day = kWindowsPerDay;
  ck.sessions_per_window = 30;
  ck.total_keys = 720;
  ck.cursor = 240;
  ck.groups = {"control", "rmin-always"};
  ck.cells.assign(2, std::vector<std::vector<WindowMetrics>>(
                         1, std::vector<WindowMetrics>(kWindowsPerDay)));
  ck.has_seq = true;
  ck.seq.rounds = 4;
  ck.seq.sessions_used = 240;
  ck.seq.budget_sessions = 720;
  ck.seq.next_key = 120;
  ck.seq.batch_sessions = 30;
  ck.seq.min_batches = 2;
  ck.seq.baseline = 0;
  ck.seq.confidence = 0.95;
  ck.seq.metric = "rate";
  ck.seq.verdict = "";
  CheckpointSeq::Arm arm;
  arm.candidate = true;
  arm.n = 120;
  arm.mean = -0.125;
  arm.m2 = 17.5;
  arm.lo = -0.5;
  arm.hi = 0.25;
  ck.seq.arms = {CheckpointSeq::Arm{}, arm};
  ck.seq.decision_log = "{\"round\":1}\n{\"round\":2}\n";

  const std::string bytes = serialize_checkpoint(ck);
  Checkpoint back;
  std::string error;
  ASSERT_TRUE(parse_checkpoint(bytes, &back, &error)) << error;
  ASSERT_TRUE(back.has_seq);
  EXPECT_EQ(back.seq.rounds, 4u);
  EXPECT_EQ(back.seq.metric, "rate");
  ASSERT_EQ(back.seq.arms.size(), 2u);
  EXPECT_EQ(back.seq.arms[1].n, 120);
  EXPECT_EQ(bits(back.seq.arms[1].mean), bits(-0.125));
  EXPECT_EQ(bits(back.seq.arms[1].m2), bits(17.5));
  EXPECT_EQ(back.seq.decision_log, ck.seq.decision_log);
  EXPECT_EQ(serialize_checkpoint(back), bytes);
}

TEST(CheckpointContainer, DetectsCorruptionAndTruncation) {
  const std::string bytes = serialize_checkpoint(sample_checkpoint());
  Checkpoint out;
  std::string error;

  // Flip one payload byte (inside the first section, past the 16-byte
  // header and 12-byte framing): the section CRC must catch it.
  std::string corrupt = bytes;
  corrupt[40] = static_cast<char>(corrupt[40] ^ 0x20);
  EXPECT_FALSE(parse_checkpoint(corrupt, &out, &error));
  EXPECT_FALSE(error.empty());

  // Truncation at any point: bad trailer.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{10},
                                 bytes.size() / 2, bytes.size() - 1}) {
    error.clear();
    EXPECT_FALSE(parse_checkpoint(bytes.substr(0, keep), &out, &error))
        << "keep=" << keep;
    EXPECT_FALSE(error.empty());
  }

  // Wrong magic.
  std::string magic = bytes;
  magic[0] = 'X';
  EXPECT_FALSE(parse_checkpoint(magic, &out, &error));
}

TEST(CheckpointContainer, SaveLoadRoundTrip) {
  const Checkpoint ck = sample_checkpoint();
  const std::string path = testing::TempDir() + "/bba_ckpt_roundtrip.ckpt";
  std::string error;
  ASSERT_TRUE(save_checkpoint(ck, path, &error)) << error;
  Checkpoint back;
  ASSERT_TRUE(load_checkpoint(path, &back, &error)) << error;
  EXPECT_EQ(serialize_checkpoint(back), serialize_checkpoint(ck));
  std::remove(path.c_str());

  EXPECT_FALSE(save_checkpoint(ck, "/nonexistent/dir/x.ckpt", &error));
  EXPECT_FALSE(load_checkpoint("/nonexistent/dir/x.ckpt", &back, &error));
}

AbTestConfig tiny_config() {
  AbTestConfig cfg;
  cfg.sessions_per_window = 2;
  cfg.days = 1;
  cfg.seed = 99;
  cfg.threads = 2;
  return cfg;
}

std::vector<Group> tiny_groups() {
  return {{"control", make_control_factory()},
          {"bba2", make_bba2_factory()}};
}

TEST(CheckpointedRun, DefaultOptionsMatchRunAbTest) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const AbTestResult reference = run_ab_test(tiny_groups(), lib,
                                             tiny_config());
  AbTestResult result;
  std::string error;
  ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                       CheckpointOptions{}, &result, &error))
      << error;
  EXPECT_TRUE(cells_bit_equal(result, reference));
}

TEST(CheckpointedRun, ChunkedRunAndResumeRenderAreByteNeutral) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const AbTestResult reference = run_ab_test(tiny_groups(), lib,
                                             tiny_config());
  const std::string path = testing::TempDir() + "/bba_ckpt_chunked.ckpt";

  // Chunking the fold into 7-key blocks (with a save between blocks) must
  // not change a single bit: the fold is strictly sequential either way.
  CheckpointOptions opts;
  opts.out = path;
  opts.every = 7;
  AbTestResult chunked;
  std::string error;
  ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                       opts, &chunked, &error))
      << error;
  EXPECT_TRUE(cells_bit_equal(chunked, reference));

  // The final checkpoint is complete; resuming it re-renders the result
  // without simulating, at a different thread count.
  Checkpoint final_ck;
  ASSERT_TRUE(load_checkpoint(path, &final_ck, &error)) << error;
  EXPECT_TRUE(final_ck.complete());

  CheckpointOptions resume;
  resume.resume = path;
  AbTestConfig cfg = tiny_config();
  cfg.threads = 1;
  AbTestResult rendered;
  ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, cfg, resume,
                                       &rendered, &error))
      << error;
  EXPECT_TRUE(cells_bit_equal(rendered, reference));
  std::remove(path.c_str());
}

TEST(CheckpointedRun, ResumeValidatesRunIdentity) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::string path = testing::TempDir() + "/bba_ckpt_identity.ckpt";
  CheckpointOptions opts;
  opts.out = path;
  AbTestResult result;
  std::string error;
  ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                       opts, &result, &error))
      << error;

  CheckpointOptions resume;
  resume.resume = path;

  AbTestConfig wrong_seed = tiny_config();
  wrong_seed.seed = 100;
  EXPECT_FALSE(run_ab_test_checkpointed(tiny_groups(), lib, wrong_seed,
                                        resume, &result, &error));
  EXPECT_NE(error.find("seed"), std::string::npos) << error;

  AbTestConfig wrong_dims = tiny_config();
  wrong_dims.sessions_per_window = 3;
  EXPECT_FALSE(run_ab_test_checkpointed(tiny_groups(), lib, wrong_dims,
                                        resume, &result, &error));

  std::vector<Group> wrong_groups = tiny_groups();
  wrong_groups[1].name = "bba0";
  EXPECT_FALSE(run_ab_test_checkpointed(wrong_groups, lib, tiny_config(),
                                        resume, &result, &error));

  CheckpointOptions missing;
  missing.resume = "/nonexistent/x.ckpt";
  EXPECT_FALSE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                        missing, &result, &error));
  std::remove(path.c_str());
}

TEST(CheckpointedRun, ShardsMergeToTheSingleRunCheckpoint) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::string base = testing::TempDir() + "/bba_ckpt_shard";

  // Unsharded reference run, also writing its final checkpoint.
  CheckpointOptions full_opts;
  full_opts.out = base + "_full.ckpt";
  AbTestResult reference;
  std::string error;
  ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                       full_opts, &reference, &error))
      << error;

  // Three shard partials, alternating thread counts.
  std::vector<Checkpoint> parts(3);
  for (std::size_t k = 1; k <= 3; ++k) {
    CheckpointOptions opts;
    opts.out = base + std::to_string(k) + ".ckpt";
    opts.shard_index = k;
    opts.shard_count = 3;
    AbTestConfig cfg = tiny_config();
    cfg.threads = (k % 2 == 0) ? 2 : 1;
    AbTestResult partial;
    ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, cfg, opts,
                                         &partial, &error))
        << error;
    ASSERT_TRUE(load_checkpoint(opts.out, &parts[k - 1], &error)) << error;
    EXPECT_TRUE(parts[k - 1].complete());
    std::remove(opts.out.c_str());
  }

  // The merged partials ARE the unsharded run's checkpoint, byte for byte.
  Checkpoint merged;
  ASSERT_TRUE(merge_checkpoints(parts, &merged, &error)) << error;
  Checkpoint full;
  ASSERT_TRUE(load_checkpoint(full_opts.out, &full, &error)) << error;
  EXPECT_EQ(serialize_checkpoint(merged), serialize_checkpoint(full));

  // And resuming the merged checkpoint renders the reference cells.
  const std::string merged_path = base + "_merged.ckpt";
  ASSERT_TRUE(save_checkpoint(merged, merged_path, &error)) << error;
  CheckpointOptions resume;
  resume.resume = merged_path;
  AbTestResult rendered;
  ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                       resume, &rendered, &error))
      << error;
  EXPECT_TRUE(cells_bit_equal(rendered, reference));
  std::remove(full_opts.out.c_str());
  std::remove(merged_path.c_str());
}

TEST(CheckpointedRun, MergeRejectsBadShardSets) {
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::string base = testing::TempDir() + "/bba_ckpt_badmerge";
  std::vector<Checkpoint> parts(2);
  std::string error;
  for (std::size_t k = 1; k <= 2; ++k) {
    CheckpointOptions opts;
    opts.out = base + std::to_string(k) + ".ckpt";
    opts.shard_index = k;
    opts.shard_count = 2;
    AbTestResult partial;
    ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                         opts, &partial, &error))
        << error;
    ASSERT_TRUE(load_checkpoint(opts.out, &parts[k - 1], &error)) << error;
    std::remove(opts.out.c_str());
  }

  Checkpoint merged;
  // Same shard twice.
  EXPECT_FALSE(
      merge_checkpoints({parts[0], parts[0]}, &merged, &error));
  // Missing shard.
  EXPECT_FALSE(merge_checkpoints({parts[0]}, &merged, &error));
  // Mismatched seed.
  Checkpoint reseeded = parts[1];
  reseeded.seed ^= 1;
  EXPECT_FALSE(merge_checkpoints({parts[0], reseeded}, &merged, &error));
  // The honest set still merges.
  EXPECT_TRUE(merge_checkpoints(parts, &merged, &error)) << error;
}

// A reproducible mid-run kill: the child process saves two checkpoints and
// _Exit(3)s right after the second, exactly like the CLI's
// --checkpoint-kill test hook. The parent then resumes the partial file at
// a different thread count and must land on the uninterrupted run's bits.
TEST(CheckpointedRunDeathTest, KillAndResumeReproduceTheRun) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const media::VideoLibrary lib = media::VideoLibrary::standard(11);
  const std::string path = testing::TempDir() + "/bba_ckpt_kill.ckpt";
  std::remove(path.c_str());

  CheckpointOptions kill_opts;
  kill_opts.out = path;
  kill_opts.every = 6;
  kill_opts.kill_after = 2;
  EXPECT_EXIT(
      {
        AbTestConfig cfg = tiny_config();
        cfg.threads = 1;
        AbTestResult result;
        std::string error;
        run_ab_test_checkpointed(tiny_groups(), lib, cfg, kill_opts,
                                 &result, &error);
      },
      testing::ExitedWithCode(3), "");

  Checkpoint partial;
  std::string error;
  ASSERT_TRUE(load_checkpoint(path, &partial, &error)) << error;
  EXPECT_EQ(partial.cursor, 12u);  // killed right after the second save
  EXPECT_FALSE(partial.complete());

  const AbTestResult reference = run_ab_test(tiny_groups(), lib,
                                             tiny_config());
  CheckpointOptions resume;
  resume.resume = path;
  AbTestResult resumed;
  ASSERT_TRUE(run_ab_test_checkpointed(tiny_groups(), lib, tiny_config(),
                                       resume, &resumed, &error))
      << error;
  EXPECT_TRUE(cells_bit_equal(resumed, reference));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bba::exp
