// Synthetic VBR (and CBR) chunk-size generation.
//
// Substitution for the paper's production encodes (DESIGN.md Sec. 1): the
// paper's Fig. 10 shows 4-second chunks of a 3 Mb/s encode with mean chunk
// size 1.5 MB and a max-to-average ratio e ~= 2. We model per-chunk
// "scene complexity" as a piecewise (scene-structured) log-normal process
// shared across all ladder rates -- the same scene is expensive at every
// rate -- normalized so the mean complexity is 1 (the nominal rate is the
// average rate, as VBR encoding guarantees).
#pragma once

#include <cstddef>
#include <vector>

#include "media/chunk_table.hpp"
#include "media/encoding_ladder.hpp"
#include "util/rng.hpp"

namespace bba::media {

/// Parameters of the scene-complexity process.
struct VbrConfig {
  /// Mean scene length in chunks (geometric); 5 chunks = 20 s scenes.
  /// The paper's Fig. 10 shows chunk sizes oscillating rapidly around the
  /// mean rather than holding long plateaus, so scenes are short and the
  /// per-chunk jitter is strong.
  double mean_scene_chunks = 5.0;
  /// Std-dev of per-scene log-complexity.
  double sigma_scene = 0.40;
  /// Std-dev of per-chunk log-jitter within a scene.
  double sigma_chunk = 0.22;
  /// Complexity clamp, as a multiple of the average chunk size. The upper
  /// clamp bounds the paper's max-to-average ratio e; production encodes
  /// have e ~= 2.
  double min_ratio = 0.25;
  double max_ratio = 2.2;
};

/// Per-chunk complexity multipliers: mean exactly 1, each value within
/// [min_ratio, max_ratio]. `n` must be >= 1.
std::vector<double> generate_complexity(std::size_t n, const VbrConfig& cfg,
                                        util::Rng& rng);

/// Complexity profile of an opening-credits-heavy title: the first
/// `credits_chunks` chunks are near-static (complexity ~= min_ratio), as in
/// the paper's reservoir discussion ("when playing static scenes such as
/// opening credits ... the calculated reservoir size is negative").
std::vector<double> generate_complexity_with_credits(
    std::size_t n, std::size_t credits_chunks, const VbrConfig& cfg,
    util::Rng& rng);

/// Builds a VBR chunk table: size[r][k] = V * rate(r) * complexity[k].
/// `complexity` must have one entry per chunk.
ChunkTable make_vbr_table(const EncodingLadder& ladder,
                          const std::vector<double>& complexity,
                          double chunk_duration_s);

/// Builds a CBR chunk table (complexity == 1 everywhere): the idealized
/// assumption 3 of Sec. 3.1.
ChunkTable make_cbr_table(const EncodingLadder& ladder,
                          std::size_t num_chunks, double chunk_duration_s);

}  // namespace bba::media
