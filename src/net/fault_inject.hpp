// Composable fault injection over capacity traces.
//
// The paper motivates BBA's reservoir with network faults: "temporary
// network outages of 20-35 s are not uncommon" (Sec. 7.1). A FaultPlan is
// an ordered list of fault passes applied to a base trace:
//
//   - kOutage:   hard zero-capacity windows at exponentially distributed
//                intervals (the generalization of trace_gen's
//                insert_outages -- same draw order, same segments).
//   - kSpike:    bounded-duration multiplicative capacity dips (latency /
//                throughput spikes: WiFi interference, cross traffic).
//                Overlaid in place; the trace timeline is not stretched.
//   - kFailover: a CDN failover -- a short blackout while the client
//                re-resolves, then a step change to a different capacity
//                regime (all capacity after the blackout is multiplied by
//                the drawn regime factor; factors compound across
//                failovers).
//
// Passes consume the caller's Rng in plan order with a fixed per-event
// draw sequence, so a plan applied with a coordinate-keyed substream
// (exp::StreamClass::kFaults) is bit-identical at any thread count.
//
// Every injected fault is reported as an InjectedFault event in OUTPUT
// trace time (after any time insertion by earlier passes), so downstream
// consumers -- stall attribution in sim::Player, `fault` events in
// obs::SessionTraceSink -- can overlay faults on the session timeline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/capacity_trace.hpp"
#include "util/rng.hpp"

namespace bba::net {

enum class FaultKind : std::uint8_t {
  kOutage = 0,
  kSpike = 1,
  kFailover = 2,
};

/// Stable lowercase name ("outage" / "spike" / "failover"); used by the
/// spec grammar and the obs `fault` event schema. Header-only so obs can
/// serialize fault events without a link dependency on bba_net.
inline const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kSpike: return "spike";
    case FaultKind::kFailover: return "failover";
  }
  return "unknown";
}

/// One fault pass. Events arrive with exponentially distributed gaps of
/// mean `mean_interval_s` between the end of one event and the start of
/// the next; each event's duration is uniform in
/// [min_duration_s, max_duration_s].
///
/// `min_factor`/`max_factor` give the uniform range of the event's
/// capacity factor; it is ignored for kOutage (capacity is exactly 0).
/// For kSpike the factor multiplies capacity for the event's duration;
/// for kFailover the drawn duration is the blackout length and the factor
/// is the new regime's capacity multiplier from the failover onward.
struct FaultSpec {
  FaultKind kind = FaultKind::kOutage;
  double mean_interval_s = 600.0;
  double min_duration_s = 15.0;
  double max_duration_s = 35.0;
  double min_factor = 1.0;
  double max_factor = 1.0;
};

/// An ordered list of fault passes; empty means "no faults" and is the
/// all-defaults state (applying an empty plan is a no-op and consumes no
/// randomness).
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }
};

/// One injected fault occurrence, in OUTPUT trace time. `duration_s` is
/// the effective duration actually present in the trace (an event drawn
/// past the end of a non-final segment list is truncated at the cycle
/// end). `factor` is 0 for outages, the dip factor for spikes, and the
/// regime multiplier for failovers (whose duration is the blackout).
struct InjectedFault {
  FaultKind kind = FaultKind::kOutage;
  double start_s = 0.0;
  double duration_s = 0.0;
  double factor = 0.0;
};

/// Reusable buffers for apply_fault_plan: ping-pong segment lists for
/// multi-pass plans plus the event list. Reusing one scratch across
/// sessions keeps the steady-state hot path allocation-free.
struct FaultScratch {
  std::vector<CapacityTrace::Segment> ping;
  std::vector<CapacityTrace::Segment> pong;
  std::vector<CapacityTrace::Segment> result;
  std::vector<InjectedFault> events;
};

/// Applies one fault pass to `base`, clearing and filling `out`.
/// Consumes rng draws in the documented per-event order; appends the
/// injected events (in this pass's output time) to `*events` when
/// non-null. `out` must not alias `base`.
void apply_fault_spec(const std::vector<CapacityTrace::Segment>& base,
                      const FaultSpec& spec, util::Rng& rng,
                      std::vector<CapacityTrace::Segment>& out,
                      std::vector<InjectedFault>* events = nullptr);

/// Applies every pass of `plan` in order, each over the previous pass's
/// output, clearing and filling `out` with the final segment list and
/// appending all injected events -- with start times shifted into FINAL
/// output time -- to `*events`. Allocation-free once `scratch` and `out`
/// have grown to the workload. `out` must alias neither `base` nor a
/// scratch buffer. An empty plan copies `base` into `out` and consumes no
/// randomness.
void apply_fault_plan(const std::vector<CapacityTrace::Segment>& base,
                      const FaultPlan& plan, util::Rng& rng,
                      FaultScratch& scratch,
                      std::vector<CapacityTrace::Segment>& out,
                      std::vector<InjectedFault>* events = nullptr);

/// Convenience wrapper: returns a copy of `base` with the plan applied
/// (same loop flag). An empty plan returns an unchanged copy.
CapacityTrace with_faults(const CapacityTrace& base, const FaultPlan& plan,
                          util::Rng& rng,
                          std::vector<InjectedFault>* events = nullptr);

/// True if any injected fault window intersects [t0_s, t1_s] in absolute
/// session time. Fault events live in the trace's first cycle; for a
/// looping trace every cycle repetition of each fault is considered
/// (`cycle_s` is the OUTPUT trace's cycle_duration_s()).
bool fault_overlaps(const std::vector<InjectedFault>& faults, double cycle_s,
                    bool loops, double t0_s, double t1_s);

/// Parses a fault-plan spec string (docs/faults.md). Grammar:
///
///   spec  := "" | "off" | "none" | pass (';' pass)*
///   pass  := kind (':' kv (',' kv)*)?
///   kind  := "outage" | "spike" | "failover"
///   kv    := key '=' range
///   key   := "every" | "dur" | "depth" | "shift"
///   range := NUM | NUM '..' NUM
///
/// `every` is the mean interval (s), `dur` the duration range (s),
/// `depth` the spike capacity-factor range, `shift` the failover regime
/// factor range. Omitted keys take per-kind defaults. Returns false and
/// sets `*error` (when non-null) on malformed input; `*plan` is left in
/// an unspecified state on failure.
bool parse_fault_plan(const std::string& spec, FaultPlan* plan,
                      std::string* error = nullptr);

/// Canonical spec string for a plan; parse_fault_plan(to_spec(p)) == p.
std::string to_spec(const FaultPlan& plan);

}  // namespace bba::net
