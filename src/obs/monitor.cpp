#include "obs/monitor.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/trace_jsonl.hpp"
#include "util/assert.hpp"

namespace bba::obs {

namespace {

constexpr const char* kMetricNames[kNumMonitorMetrics] = {
    "rebuffer_ratio", "join_s", "rate_kbps", "fault_share"};

constexpr std::size_t kNumSlos = kNumMonitorSlos;

/// The offender score for one metric: higher is worse, so alerting on a
/// *drop* in played rate captures the slowest sessions. Pure per-session
/// arithmetic -- no cell state -- so the candidate ranking is identical in
/// any fold interleaving of the same canonical order.
double offender_score(std::size_t metric, const sim::SessionMetrics& m) {
  switch (metric) {
    case 0: return m.rebuffer_s;
    case 1: return m.join_s;
    case 2: return -m.avg_rate_bps;
    default: return static_cast<double>(m.fault_stall_count);
  }
}

bool parse_u64_field(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_f64_field(const char* s, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

const char* monitor_metric_name(std::size_t metric) {
  BBA_ASSERT(metric < kNumMonitorMetrics, "monitor metric out of range");
  return kMetricNames[metric];
}

double monitor_metric_value(const TimelineCell& cell, std::size_t metric) {
  BBA_ASSERT(metric < kNumMonitorMetrics, "monitor metric out of range");
  switch (metric) {
    case 0: {  // rebuffer_ratio: stall time / (play + stall) time
      const std::uint64_t denom = cell.play_micro + cell.rebuffer_micro;
      if (denom == 0) return 0.0;
      return static_cast<double>(cell.rebuffer_micro) /
             static_cast<double>(denom);
    }
    case 1: {  // join_s: mean startup delay per session
      if (cell.sessions == 0) return 0.0;
      return static_cast<double>(cell.join_micro) /
             (1e6 * static_cast<double>(cell.sessions));
    }
    case 2: {  // rate_kbps: play-time-weighted delivered rate
      if (cell.play_micro == 0) return 0.0;
      return static_cast<double>(cell.rate_play_kbit) * 1e6 /
             static_cast<double>(cell.play_micro);
    }
    default: {  // fault_share: fault-attributed stalls / stalls
      if (cell.rebuffers == 0) return 0.0;
      return static_cast<double>(cell.fault_stalls) /
             static_cast<double>(cell.rebuffers);
    }
  }
}

bool MonitorSpec::parse(const std::string& spec, MonitorSpec* out,
                        std::string* error) {
  MonitorSpec s;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "alert-spec item missing '=': " + item;
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    bool ok = true;
    if (key == "warmup") {
      ok = parse_u64_field(val.c_str(), &s.warmup);
    } else if (key == "ewma_alpha") {
      ok = parse_f64_field(val.c_str(), &s.ewma_alpha);
    } else if (key == "ewma_k") {
      ok = parse_f64_field(val.c_str(), &s.ewma_k);
    } else if (key == "cusum_k") {
      ok = parse_f64_field(val.c_str(), &s.cusum_k);
    } else if (key == "cusum_h") {
      ok = parse_f64_field(val.c_str(), &s.cusum_h);
    } else if (key == "sd_floor") {
      ok = parse_f64_field(val.c_str(), &s.sd_floor);
    } else if (key == "slo_rebuffer_ratio") {
      ok = parse_f64_field(val.c_str(), &s.slo_rebuffer_ratio);
    } else if (key == "slo_rebuffer_windows") {
      ok = parse_u64_field(val.c_str(), &s.slo_rebuffer_windows);
    } else if (key == "slo_join_s") {
      ok = parse_f64_field(val.c_str(), &s.slo_join_s);
    } else if (key == "slo_join_windows") {
      ok = parse_u64_field(val.c_str(), &s.slo_join_windows);
    } else if (key == "top_k") {
      ok = parse_u64_field(val.c_str(), &s.top_k);
    } else if (key == "capture") {
      std::uint64_t v = 0;
      ok = parse_u64_field(val.c_str(), &v) && v <= 1;
      s.capture = v != 0;
    } else {
      if (error != nullptr) *error = "unknown alert-spec key: " + key;
      return false;
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "bad alert-spec value for " + key + ": " + val;
      }
      return false;
    }
  }
  if (s.warmup < 2) {
    if (error != nullptr) *error = "alert-spec warmup must be >= 2";
    return false;
  }
  if (s.slo_rebuffer_windows < 1 || s.slo_join_windows < 1) {
    if (error != nullptr) *error = "alert-spec slo windows must be >= 1";
    return false;
  }
  *out = s;
  return true;
}

std::string MonitorSpec::to_json() const {
  std::string o = "{\"warmup\":";
  jsonl::append_u64(o, warmup);
  o += ",\"ewma_alpha\":";
  jsonl::append_double(o, ewma_alpha);
  o += ",\"ewma_k\":";
  jsonl::append_double(o, ewma_k);
  o += ",\"cusum_k\":";
  jsonl::append_double(o, cusum_k);
  o += ",\"cusum_h\":";
  jsonl::append_double(o, cusum_h);
  o += ",\"sd_floor\":";
  jsonl::append_double(o, sd_floor);
  o += ",\"slo_rebuffer_ratio\":";
  jsonl::append_double(o, slo_rebuffer_ratio);
  o += ",\"slo_rebuffer_windows\":";
  jsonl::append_u64(o, slo_rebuffer_windows);
  o += ",\"slo_join_s\":";
  jsonl::append_double(o, slo_join_s);
  o += ",\"slo_join_windows\":";
  jsonl::append_u64(o, slo_join_windows);
  o += ",\"top_k\":";
  jsonl::append_u64(o, top_k);
  o += ",\"capture\":";
  o += capture ? "true" : "false";
  o += '}';
  return o;
}

HealthMonitor::HealthMonitor(MonitorSpec spec) : spec_(spec) {}

void HealthMonitor::begin_run(std::uint64_t seed,
                              const std::vector<std::string>& groups,
                              std::size_t days,
                              std::size_t windows_per_day) {
  BBA_ASSERT(!groups.empty(), "monitor needs at least one group");
  BBA_ASSERT(days >= 1 && windows_per_day >= 1,
             "monitor grid dimensions must be >= 1");
  if (!configured()) {
    st_.seed = seed;
    st_.days = days;
    st_.windows = windows_per_day;
    st_.groups = groups;
    const std::size_t g = groups.size();
    st_.cells.assign(days * windows_per_day * g, TimelineCell{});
    st_.ewma.assign(g * kNumMonitorMetrics, stats::EwmaState{});
    st_.cusum.assign(g * kNumMonitorMetrics, stats::CusumState{});
    st_.burn.assign(g * kNumSlos, stats::BurnState{});
    st_.cand.assign(g * kNumMonitorMetrics, MonitorCandidates{});
    const std::size_t top_k = static_cast<std::size_t>(spec_.top_k);
    for (MonitorCandidates& c : st_.cand) {
      c.sessions.reserve(top_k);
      c.scores.reserve(top_k);
    }
    return;
  }
  BBA_ASSERT(st_.seed == seed && st_.windows == windows_per_day &&
                 st_.groups == groups,
             "monitor begin_run mismatch (seed/groups/windows changed)");
  if (days > st_.days) {
    st_.days = days;
    st_.cells.resize(st_.days * st_.windows * st_.groups.size());
  }
}

void HealthMonitor::note_candidate(std::size_t group, std::uint64_t session,
                                   const sim::SessionMetrics& m) {
  const std::size_t top_k = static_cast<std::size_t>(spec_.top_k);
  if (top_k == 0) return;
  for (std::size_t metric = 0; metric < kNumMonitorMetrics; ++metric) {
    const double score = offender_score(metric, m);
    MonitorCandidates& c = st_.cand[group * kNumMonitorMetrics + metric];
    // Keep the K worst (highest score); earliest session wins ties, which
    // the insertion order guarantees (sessions arrive in canonical order
    // and a tie never displaces an earlier entry).
    std::size_t at = c.scores.size();
    while (at > 0 && score > c.scores[at - 1]) --at;
    if (at >= top_k) continue;
    if (c.scores.size() < top_k) {
      c.sessions.insert(c.sessions.begin() + static_cast<std::ptrdiff_t>(at),
                        session);
      c.scores.insert(c.scores.begin() + static_cast<std::ptrdiff_t>(at),
                      score);
    } else {
      c.sessions.pop_back();
      c.scores.pop_back();
      c.sessions.insert(c.sessions.begin() + static_cast<std::ptrdiff_t>(at),
                        session);
      c.scores.insert(c.scores.begin() + static_cast<std::ptrdiff_t>(at),
                      score);
    }
  }
}

void HealthMonitor::record(std::size_t day, std::size_t window,
                           std::size_t group, std::uint64_t session,
                           const sim::SessionMetrics& m) {
  BBA_ASSERT(configured(), "monitor record before begin_run");
  BBA_ASSERT(window < st_.windows && group < st_.groups.size(),
             "monitor record out of range");
  if (day >= st_.days) {
    // Same cold growth rule as the timeline: the sequential engine can
    // outrun its declared grid when reallocated budget draws deeper keys.
    st_.days = day + 1;
    st_.cells.resize(st_.days * st_.windows * st_.groups.size());
  }
  const std::uint64_t linear =
      static_cast<std::uint64_t>(day) * st_.windows + window;
  if (!st_.deferred) {
    BBA_ASSERT(linear >= st_.consumed,
               "monitor record out of canonical cell order");
    if (linear != st_.open && linear > st_.open) {
      // Crossing into a later cell closes everything before it.
      consume_through(linear);
    }
    st_.open = linear;
    if (spec_.capture) note_candidate(group, session, m);
  }
  st_.cells[(linear * st_.groups.size()) + group].fold(m);
}

void HealthMonitor::enqueue_captures(std::uint64_t linear, std::size_t group,
                                     std::size_t metric,
                                     const std::string& marker) {
  if (!spec_.capture || st_.deferred) return;
  const MonitorCandidates& c = st_.cand[group * kNumMonitorMetrics + metric];
  const std::uint64_t day = linear / st_.windows;
  const std::uint64_t window = linear % st_.windows;
  for (std::size_t i = 0; i < c.sessions.size(); ++i) {
    st_.pending.push_back(MonitorCapture{day, window,
                                         static_cast<std::uint64_t>(group),
                                         c.sessions[i], marker});
  }
}

void HealthMonitor::consume_cell(std::uint64_t linear) {
  const std::size_t n_groups = st_.groups.size();
  const std::uint64_t day = linear / st_.windows;
  const std::uint64_t window = linear % st_.windows;
  const stats::EwmaConfig ecfg{spec_.ewma_alpha, spec_.ewma_k, spec_.warmup,
                               spec_.sd_floor};
  const stats::CusumConfig ccfg{spec_.cusum_k, spec_.cusum_h, spec_.warmup,
                                spec_.sd_floor};
  for (std::size_t g = 0; g < n_groups; ++g) {
    const TimelineCell& cell = st_.cells[linear * n_groups + g];
    if (cell.empty()) continue;
    double values[kNumMonitorMetrics];
    for (std::size_t metric = 0; metric < kNumMonitorMetrics; ++metric) {
      values[metric] = monitor_metric_value(cell, metric);
    }
    // A fired alert appends one artifact line and (when this cell is the
    // open one with candidates) enqueues its offenders for trace capture.
    auto emit = [&](const char* kind, std::size_t metric, int dir,
                    const char* detail) {
      std::string& o = st_.alert_log;
      o += "{\"ev\":\"alert\",\"seq\":";
      jsonl::append_u64(o, st_.alert_seq);
      st_.alert_seq += 1;
      o += ",\"kind\":\"";
      o += kind;
      o += "\",\"metric\":\"";
      o += kMetricNames[metric];
      o += "\",\"day\":";
      jsonl::append_u64(o, day);
      o += ",\"window\":";
      jsonl::append_u64(o, window);
      o += ",\"group\":";
      jsonl::append_u64(o, g);
      o += ",\"group_name\":\"";
      jsonl::append_escaped(o, st_.groups[g]);
      o += "\"";
      if (dir != 0) {
        o += ",\"dir\":\"";
        o += dir > 0 ? "up" : "down";
        o += "\"";
      }
      o += ",\"value\":";
      jsonl::append_double(o, values[metric]);
      o += detail;
      o += "}\n";
      // The trace marker repeats the alert identity compactly; the session
      // line that precedes it carries the per-session coordinates.
      std::string marker = "{\"ev\":\"alert\",\"kind\":\"";
      marker += kind;
      marker += "\",\"metric\":\"";
      marker += kMetricNames[metric];
      marker += "\",\"day\":";
      jsonl::append_u64(marker, day);
      marker += ",\"window\":";
      jsonl::append_u64(marker, window);
      marker += ",\"group\":\"";
      jsonl::append_escaped(marker, st_.groups[g]);
      marker += "\"}\n";
      enqueue_captures(linear, g, metric, marker);
    };
    for (std::size_t metric = 0; metric < kNumMonitorMetrics; ++metric) {
      const double x = values[metric];
      stats::EwmaState& es = st_.ewma[g * kNumMonitorMetrics + metric];
      const double center = es.ewma;  // band center BEFORE this value folds
      const int efired = stats::ewma_step(es, x, ecfg);
      if (efired != 0) {
        std::string detail = ",\"center\":";
        jsonl::append_double(detail, center);
        detail += ",\"band\":";
        jsonl::append_double(detail, spec_.ewma_k * es.sd);
        emit("ewma", metric, efired, detail.c_str());
      }
      stats::CusumState& cs = st_.cusum[g * kNumMonitorMetrics + metric];
      const double old_pos = cs.s_pos;
      const double old_neg = cs.s_neg;
      const int cfired = stats::cusum_step(cs, x, ccfg);
      if (cfired != 0) {
        const double z = (x - cs.base.mean) / cs.sd;
        const double sum = cfired > 0 ? old_pos + z - spec_.cusum_k
                                      : old_neg - z - spec_.cusum_k;
        std::string detail = ",\"z\":";
        jsonl::append_double(detail, z);
        detail += ",\"sum\":";
        jsonl::append_double(detail, sum);
        detail += ",\"threshold\":";
        jsonl::append_double(detail, spec_.cusum_h);
        emit("cusum", metric, cfired, detail.c_str());
      }
    }
    const stats::BurnConfig slo_cfg[kNumSlos] = {
        {spec_.slo_rebuffer_ratio, spec_.slo_rebuffer_windows},
        {spec_.slo_join_s, spec_.slo_join_windows}};
    const std::size_t slo_metric[kNumSlos] = {0, 1};
    for (std::size_t s = 0; s < kNumSlos; ++s) {
      stats::BurnState& bs = st_.burn[g * kNumSlos + s];
      const double x = values[slo_metric[s]];
      if (stats::burn_step(bs, x, slo_cfg[s])) {
        std::string detail = ",\"threshold\":";
        jsonl::append_double(detail, slo_cfg[s].threshold);
        detail += ",\"streak\":";
        jsonl::append_u64(detail, bs.streak);
        emit("slo", slo_metric[s], 0, detail.c_str());
      }
    }
  }
}

void HealthMonitor::consume_through(std::uint64_t linear_end) {
  const std::uint64_t total =
      static_cast<std::uint64_t>(st_.days) * st_.windows;
  if (linear_end > total) linear_end = total;
  for (std::uint64_t linear = st_.consumed; linear < linear_end; ++linear) {
    consume_cell(linear);
  }
  if (linear_end > st_.consumed) {
    st_.consumed = linear_end;
    // Candidates belong to the cell that just closed; the next open cell
    // starts fresh. clear() keeps capacity, so no steady-state allocation.
    for (MonitorCandidates& c : st_.cand) {
      c.sessions.clear();
      c.scores.clear();
    }
  }
}

void HealthMonitor::finalize() {
  if (!configured() || st_.deferred) return;
  consume_through(static_cast<std::uint64_t>(st_.days) * st_.windows);
}

void HealthMonitor::refold() {
  BBA_ASSERT(configured(), "monitor refold before begin_run");
  st_.deferred = false;
  st_.consumed = 0;
  st_.open = 0;
  st_.alert_seq = 0;
  st_.alert_log.clear();
  st_.pending.clear();
  const std::size_t g = st_.groups.size();
  st_.ewma.assign(g * kNumMonitorMetrics, stats::EwmaState{});
  st_.cusum.assign(g * kNumMonitorMetrics, stats::CusumState{});
  st_.burn.assign(g * kNumSlos, stats::BurnState{});
  for (MonitorCandidates& c : st_.cand) {
    c.sessions.clear();
    c.scores.clear();
  }
  // Candidates are empty throughout, so the refold fires the same alert
  // lines as the online fold but no captures (per-session data is gone).
  consume_through(static_cast<std::uint64_t>(st_.days) * st_.windows);
}

std::vector<MonitorCapture> HealthMonitor::take_captures() {
  std::vector<MonitorCapture> out = std::move(st_.pending);
  st_.pending.clear();
  std::stable_sort(out.begin(), out.end(),
                   [](const MonitorCapture& a, const MonitorCapture& b) {
                     if (a.day != b.day) return a.day < b.day;
                     if (a.window != b.window) return a.window < b.window;
                     if (a.group != b.group) return a.group < b.group;
                     return a.session < b.session;
                   });
  // Dedup by coordinates; stable_sort kept the first-fired marker first.
  std::vector<MonitorCapture> dedup;
  dedup.reserve(out.size());
  for (MonitorCapture& c : out) {
    if (!dedup.empty() && dedup.back().day == c.day &&
        dedup.back().window == c.window && dedup.back().group == c.group &&
        dedup.back().session == c.session) {
      continue;
    }
    dedup.push_back(std::move(c));
  }
  return dedup;
}

std::string HealthMonitor::render() const {
  std::string o = "{\"schema\":\"bba.alerts.v1\",\"seed\":";
  jsonl::append_u64(o, st_.seed);
  o += ",\"days\":";
  jsonl::append_u64(o, st_.days);
  o += ",\"windows_per_day\":";
  jsonl::append_u64(o, st_.windows);
  o += ",\"groups\":[";
  for (std::size_t g = 0; g < st_.groups.size(); ++g) {
    if (g != 0) o += ',';
    o += '"';
    jsonl::append_escaped(o, st_.groups[g]);
    o += '"';
  }
  o += "],\"spec\":";
  o += spec_.to_json();
  o += "}\n";
  o += st_.alert_log;
  std::uint64_t filled = 0;
  for (const TimelineCell& c : st_.cells) {
    if (!c.empty()) ++filled;
  }
  // The summary counts cells and alerts only -- captures are a trace-side
  // effect that sharded refolds cannot reproduce, so they stay out of the
  // artifact to keep shard-merge byte equality.
  o += "{\"ev\":\"summary\",\"cells\":";
  jsonl::append_u64(o, filled);
  o += ",\"alerts\":";
  jsonl::append_u64(o, st_.alert_seq);
  o += '}';
  return o;
}

void HealthMonitor::restore(MonitorState st) {
  const std::size_t g = st.groups.size();
  BBA_ASSERT(g >= 1 && st.windows >= 1 && st.days >= 1,
             "monitor restore: bad grid");
  BBA_ASSERT(st.cells.size() == st.days * st.windows * g &&
                 st.ewma.size() == g * kNumMonitorMetrics &&
                 st.cusum.size() == g * kNumMonitorMetrics &&
                 st.burn.size() == g * kNumSlos &&
                 st.cand.size() == g * kNumMonitorMetrics,
             "monitor restore: inconsistent state");
  st_ = std::move(st);
  const std::size_t top_k = static_cast<std::size_t>(spec_.top_k);
  for (MonitorCandidates& c : st_.cand) {
    c.sessions.reserve(top_k);
    c.scores.reserve(top_k);
  }
}

}  // namespace bba::obs
