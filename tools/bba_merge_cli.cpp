// bba_merge: folds sharded run artifacts back into single-run artifacts.
//
//   bba_merge checkpoints --out merged.ckpt shard1.ckpt ... shardM.ckpt
//   bba_merge traces      --out merged.trace shard1.trace ... shardM.trace
//
// A `--shard K/M` run (bba_abtest / bba_paper_report) writes one
// checkpoint-format partial per shard plus, with tracing on, one trace
// shard. `checkpoints` unions the partials into the checkpoint the
// unsharded run would have written (exp::merge_checkpoints:
// disjoint-cell union, integer-exact timeline merge); `--resume` on that
// file then renders the report/artifacts without simulating. `traces`
// reorders the shard traces into canonical (day, window, session) order,
// which reproduces the unsharded trace file byte for byte -- each
// (day, window) cell lives in exactly one shard, so a stable merge never
// has to interleave within a session. Both JSONL and btrace shards are
// handled; the container footer of a merged btrace is rebuilt by the
// same collector that writes it on a live run.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "obs/btrace.hpp"
#include "obs/trace.hpp"

namespace {

using namespace bba;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s checkpoints --out MERGED.ckpt SHARD.ckpt...\n"
      "       %s traces      --out MERGED SHARD...\n"
      "  checkpoints: folds --shard K/M partials into the checkpoint the\n"
      "               unsharded run would have written (docs/checkpoint.md)\n"
      "  traces:      merges shard trace files (JSONL or btrace) into the\n"
      "               byte-identical single-run trace\n",
      argv0, argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out,
               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = path + ": cannot open";
    return false;
  }
  out->clear();
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->append(buf, got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) *error = path + ": read error";
  return ok;
}

int merge_checkpoint_files(const std::string& out_path,
                           const std::vector<std::string>& inputs) {
  std::vector<exp::Checkpoint> parts(inputs.size());
  std::string error;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!exp::load_checkpoint(inputs[i], &parts[i], &error)) {
      std::fprintf(stderr, "bba_merge: %s\n", error.c_str());
      return 1;
    }
  }
  exp::Checkpoint merged;
  if (!exp::merge_checkpoints(parts, &merged, &error)) {
    std::fprintf(stderr, "bba_merge: %s\n", error.c_str());
    return 1;
  }
  if (!exp::save_checkpoint(merged, out_path, &error)) {
    std::fprintf(stderr, "bba_merge: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "bba_merge: %zu shards -> %s (%llu keys, %zu groups)\n",
               parts.size(), out_path.c_str(),
               static_cast<unsigned long long>(merged.total_keys),
               merged.groups.size());
  return 0;
}

/// One session's worth of trace bytes (JSONL chunk or btrace block) with
/// its canonical coordinates and a stable tiebreak (source file, order
/// within it). Within one (day, window, session) triple every chunk comes
/// from the same shard -- the cell owns the whole session -- so sorting by
/// coordinates with the in-file order as tiebreak reproduces the
/// unsharded write order exactly.
struct TraceChunk {
  std::uint64_t day = 0, window = 0, session = 0;
  std::size_t file = 0, seq = 0;
  std::size_t begin = 0, end = 0;  ///< byte range in the source contents

  bool operator<(const TraceChunk& other) const {
    if (day != other.day) return day < other.day;
    if (window != other.window) return window < other.window;
    if (session != other.session) return session < other.session;
    if (file != other.file) return file < other.file;
    return seq < other.seq;
  }
};

/// Parses `"key":<digits>` out of a JSONL session-header line.
bool field_u64(const std::string& line, std::size_t limit, const char* key,
               std::uint64_t* out) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(pat, 0);
  if (pos == std::string::npos || pos >= limit) return false;
  std::size_t p = pos + pat.size();
  if (p >= limit || line[p] < '0' || line[p] > '9') return false;
  std::uint64_t v = 0;
  while (p < limit && line[p] >= '0' && line[p] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[p] - '0');
    ++p;
  }
  *out = v;
  return true;
}

/// Splits one JSONL shard into per-session chunks (header line + its
/// event lines). Event lines belong to the most recent header, so a chunk
/// runs from one `{"ev":"session",...}` line to the next.
bool split_jsonl(const std::string& contents, std::size_t file_index,
                 std::vector<TraceChunk>* chunks, std::string* error) {
  static const char kHeader[] = "{\"ev\":\"session\",";
  std::size_t pos = 0, seq = 0;
  while (pos < contents.size()) {
    if (contents.compare(pos, sizeof kHeader - 1, kHeader) != 0) {
      *error = "line does not start a session header (is this a session "
               "trace?)";
      return false;
    }
    std::size_t line_end = contents.find('\n', pos);
    if (line_end == std::string::npos) line_end = contents.size();
    TraceChunk chunk;
    chunk.file = file_index;
    chunk.seq = seq++;
    chunk.begin = pos;
    if (!field_u64(contents.substr(pos, line_end - pos),
                   line_end - pos, "day", &chunk.day) ||
        !field_u64(contents.substr(pos, line_end - pos),
                   line_end - pos, "window", &chunk.window) ||
        !field_u64(contents.substr(pos, line_end - pos),
                   line_end - pos, "session", &chunk.session)) {
      *error = "session header missing day/window/session";
      return false;
    }
    // Advance past this header's event lines to the next header (or EOF).
    std::size_t next = line_end == contents.size() ? line_end : line_end + 1;
    while (next < contents.size() &&
           contents.compare(next, sizeof kHeader - 1, kHeader) != 0) {
      std::size_t e = contents.find('\n', next);
      next = e == std::string::npos ? contents.size() : e + 1;
    }
    chunk.end = next;
    chunks->push_back(chunk);
    pos = next;
  }
  return true;
}

int merge_jsonl_traces(const std::string& out_path,
                       const std::vector<std::string>& inputs) {
  std::vector<std::string> contents(inputs.size());
  std::vector<TraceChunk> chunks;
  std::string error;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (!read_file(inputs[i], &contents[i], &error)) {
      std::fprintf(stderr, "bba_merge: %s\n", error.c_str());
      return 1;
    }
    if (!split_jsonl(contents[i], i, &chunks, &error)) {
      std::fprintf(stderr, "bba_merge: %s: %s\n", inputs[i].c_str(),
                   error.c_str());
      return 1;
    }
  }
  std::sort(chunks.begin(), chunks.end());
  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "bba_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  for (const TraceChunk& c : chunks) {
    const std::size_t len = c.end - c.begin;
    if (std::fwrite(contents[c.file].data() + c.begin, 1, len, out) != len) {
      std::fprintf(stderr, "bba_merge: short write to %s\n",
                   out_path.c_str());
      std::fclose(out);
      return 1;
    }
  }
  std::fclose(out);
  std::fprintf(stderr, "bba_merge: %zu sessions from %zu shards -> %s\n",
               chunks.size(), inputs.size(), out_path.c_str());
  return 0;
}

int merge_btrace_traces(const std::string& out_path,
                        const std::vector<std::string>& inputs) {
  // Index every shard (footer open, falling back to a block scan for
  // truncated files) and keep the raw bytes for offset/length slicing.
  std::vector<std::string> contents(inputs.size());
  std::vector<TraceChunk> chunks;
  std::string error;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    obs::BtraceReader reader;
    if (!reader.open(inputs[i], &error) &&
        !reader.open_scan(inputs[i], &error)) {
      std::fprintf(stderr, "bba_merge: %s: %s\n", inputs[i].c_str(),
                   error.c_str());
      return 1;
    }
    if (!read_file(inputs[i], &contents[i], &error)) {
      std::fprintf(stderr, "bba_merge: %s\n", error.c_str());
      return 1;
    }
    for (std::size_t s = 0; s < reader.session_count(); ++s) {
      const obs::BtraceEntry& e = reader.entry(s);
      if (e.offset + e.length > contents[i].size()) {
        std::fprintf(stderr, "bba_merge: %s: block %zu past EOF\n",
                     inputs[i].c_str(), s);
        return 1;
      }
      TraceChunk chunk;
      chunk.day = e.day;
      chunk.window = e.window;
      chunk.session = e.session;
      chunk.file = i;
      chunk.seq = s;
      chunk.begin = static_cast<std::size_t>(e.offset);
      chunk.end = static_cast<std::size_t>(e.offset + e.length);
      chunks.push_back(chunk);
    }
  }
  std::sort(chunks.begin(), chunks.end());
  // Replaying the raw blocks through a fresh collector re-interns the
  // group table and rebuilds the footer index in the merged write order --
  // the same path a live unsharded run takes, so the container comes out
  // byte-identical.
  obs::TraceConfig cfg;
  cfg.path = out_path;
  obs::BinaryTraceCollector collector(cfg);
  if (!collector.ok()) {
    std::fprintf(stderr, "bba_merge: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::string block;
  for (const TraceChunk& c : chunks) {
    block.assign(contents[c.file], c.begin, c.end - c.begin);
    collector.write(block);
  }
  collector.finalize();
  if (!collector.ok()) {
    std::fprintf(stderr, "bba_merge: write error on %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "bba_merge: %zu sessions from %zu shards -> %s\n",
               chunks.size(), inputs.size(), out_path.c_str());
  return 0;
}

int merge_trace_files(const std::string& out_path,
                      const std::vector<std::string>& inputs) {
  // All shards of one run share a format; sniff the first and verify the
  // rest agree.
  const bool binary = obs::BtraceReader::sniff(inputs[0]);
  for (const std::string& path : inputs) {
    if (obs::BtraceReader::sniff(path) != binary) {
      std::fprintf(stderr,
                   "bba_merge: %s: mixed trace formats (jsonl vs btrace)\n",
                   path.c_str());
      return 1;
    }
  }
  return binary ? merge_btrace_traces(out_path, inputs)
                : merge_jsonl_traces(out_path, inputs);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out needs a value\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (out_path.empty() || inputs.empty()) return usage(argv[0]);
  if (command == "checkpoints") {
    return merge_checkpoint_files(out_path, inputs);
  }
  if (command == "traces") {
    return merge_trace_files(out_path, inputs);
  }
  return usage(argv[0]);
}
