// Fig. 18: steady-state video rate (excluding the first two minutes of
// each session), BBA-2 vs Control.
//
// Paper shape: in steady state BBA-2 delivers a mostly HIGHER rate than
// Control -- the buffer-based approach utilizes capacity better once the
// buffer carries information (Sec. 3's average-rate-maximization result).
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 18: steady-state video rate (after 2 min), BBA-2 vs "
                "Control",
                "BBA-2's steady-state rate is mostly higher than "
                "Control's.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "bba2"});
  const auto metric = exp::steady_rate_kbps_metric();

  exp::print_absolute_by_window(result, metric);
  std::printf("\n");
  exp::print_delta_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig18_steady_rate");

  const double delta =
      exp::mean_delta(result, metric, "bba2", "control", false);
  int windows_higher = 0;
  for (std::size_t w = 0; w < exp::kWindowsPerDay; ++w) {
    const double control =
        metric.get(result.merged(result.group_index("control"), w));
    const double bba2 =
        metric.get(result.merged(result.group_index("bba2"), w));
    if (bba2 > control) ++windows_higher;
  }
  std::printf("\nBBA-2 - Control steady-state: %.0f kb/s; BBA-2 higher in "
              "%d/12 windows\n",
              -delta, windows_higher);

  bool ok = true;
  ok &= exp::shape_check(delta < 0.0,
                         "BBA-2's steady-state rate exceeds Control's on "
                         "average");
  ok &= exp::shape_check(windows_higher >= 7,
                         "BBA-2 is higher in most two-hour windows");
  return bench::verdict(ok);
}
