# Empty dependencies file for test_sim_cross_features.
# This may be replaced when dependencies are built.
