file(REMOVE_RECURSE
  "CMakeFiles/fig09_switch_rate_bba0.dir/fig09_switch_rate_bba0.cpp.o"
  "CMakeFiles/fig09_switch_rate_bba0.dir/fig09_switch_rate_bba0.cpp.o.d"
  "fig09_switch_rate_bba0"
  "fig09_switch_rate_bba0.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_switch_rate_bba0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
