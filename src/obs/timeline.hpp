// Fleet telemetry: deterministic time-bucketed aggregation of every
// simulated session.
//
// The source paper is a measurement study -- Netflix dashboards of rebuffer
// rate and video rate per time-of-day across days of A/B traffic. The
// TimelineAggregator reproduces that view for the harness: every finished
// session (scalar player, batch kernel, and recorded paths alike -- all of
// them funnel through the SessionBlockRunner fold) is folded into one
// per-(day, time-of-day window, group) cell, plus per-group quantile
// sketches for video rate, startup delay, and buffer occupancy.
//
// Invariants, in order of importance:
//   * Canonical-order folding: callers record() from the block runner's
//     sequential fold, so the aggregate -- and its serialized bytes -- are
//     identical at any --threads.
//   * Integer-only cells: every accumulator is a u64 (durations in 1e-6 s
//     units, rounded per session exactly like obs::HistSlot::sum_micro).
//     Doubles are banned here because FP addition is not associative:
//     integer cells make merge() exact in any association or order, so
//     per-shard partial runs combine to the single-run artifact byte for
//     byte. This is the serialization seed for the ROADMAP
//     checkpoint/resume + multi-machine sharding item.
//   * Zero steady-state allocations: begin_run() sizes everything up
//     front; record() is pure array arithmetic (the hot-path bench
//     enforces this).
//
// The emitted artifact (`--timeline-out` / $BBA_TIMELINE, schema
// "bba.timeline.v1") is rendered by tools/bba_obs_cli.cpp. See
// docs/observability.md ("Fleet telemetry") for the cell schema and merge
// semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "stats/sketch.hpp"

namespace bba::obs {

/// One (day, window, group) cell. All integers -- see the file comment.
struct TimelineCell {
  std::uint64_t sessions = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t rebuffers = 0;
  std::uint64_t fault_stalls = 0;   ///< stalls attributed to injected faults
  std::uint64_t switches = 0;
  std::uint64_t play_micro = 0;     ///< played seconds, 1e-6 units
  std::uint64_t rebuffer_micro = 0; ///< stall seconds, 1e-6 units
  std::uint64_t join_micro = 0;     ///< summed startup delay, 1e-6 units
  /// Time-weighted rate numerator: sum of round(avg_rate_bps * play_s /
  /// 1000) per session, i.e. kilobits of delivered video. Divide by play
  /// seconds for the cell's play-time-weighted average rate.
  std::uint64_t rate_play_kbit = 0;

  bool empty() const { return sessions == 0; }

  /// Seconds -> 1e-6 s units with the HistSlot::sum_micro rounding
  /// convention. Rounding happens once, per session, before any addition,
  /// so cell sums are integer-exact under sharding.
  static std::uint64_t to_micro(double v) {
    return v > 0.0 ? static_cast<std::uint64_t>(v * 1e6 + 0.5) : 0;
  }

  /// Folds one finished session into the cell -- THE cell arithmetic,
  /// shared by the TimelineAggregator and the HealthMonitor (obs/monitor)
  /// so both sides see bit-identical aggregates for the same sessions.
  void fold(const sim::SessionMetrics& m) {
    sessions += 1;
    abandoned += m.abandoned ? 1 : 0;
    rebuffers += static_cast<std::uint64_t>(m.rebuffer_count);
    fault_stalls += static_cast<std::uint64_t>(m.fault_stall_count);
    switches += static_cast<std::uint64_t>(m.switch_count);
    play_micro += to_micro(m.play_s);
    rebuffer_micro += to_micro(m.rebuffer_s);
    join_micro += to_micro(m.join_s);
    const double kbit = m.avg_rate_bps * m.play_s / 1000.0;
    rate_play_kbit +=
        kbit > 0.0 ? static_cast<std::uint64_t>(kbit + 0.5) : 0;
  }

  void merge(const TimelineCell& o) {
    sessions += o.sessions;
    abandoned += o.abandoned;
    rebuffers += o.rebuffers;
    fault_stalls += o.fault_stalls;
    switches += o.switches;
    play_micro += o.play_micro;
    rebuffer_micro += o.rebuffer_micro;
    join_micro += o.join_micro;
    rate_play_kbit += o.rate_play_kbit;
  }
};

/// Per-group distribution sketches (one value per session each).
struct GroupSketches {
  stats::QuantileSketch rate_bps;   ///< delivered video rate
  stats::QuantileSketch join_s;     ///< startup delay
  stats::QuantileSketch buffer_s;   ///< session mean buffer level
};

class TimelineAggregator {
 public:
  /// Declares the grid and allocates it. Idempotent: the first call
  /// configures; later calls must agree on seed, groups, and
  /// windows_per_day, and may only grow `days` (the sequential engine
  /// extends the grid as reallocated budget draws deeper keys).
  void begin_run(std::uint64_t seed, const std::vector<std::string>& groups,
                 std::size_t days, std::size_t windows_per_day);

  bool configured() const { return !groups_.empty(); }

  /// Folds one finished session into its cell and its group's sketches.
  /// Pure array arithmetic -- no allocation, no locking; call from the
  /// block runner's sequential fold (canonical key order).
  void record(std::size_t day, std::size_t window, std::size_t group,
              const sim::SessionMetrics& m);

  /// Integer-exact merge of another aggregator (a shard's partial run).
  /// Associative and commutative. The shards must agree on seed, group
  /// names, and windows_per_day; days may differ (the result covers the
  /// maximum). Returns false (and merges nothing) on a mismatch.
  bool merge(const TimelineAggregator& other);

  /// Serializes the full state as a single-line JSON document, schema
  /// "bba.timeline.v1". All numbers are integers and cells are emitted in
  /// (day, window, group) order with empty cells skipped, so the bytes
  /// are a pure function of the aggregate state: thread-count invariance
  /// and shard-merge exactness are byte-testable.
  std::string to_json() const;

  std::uint64_t seed() const { return seed_; }
  std::size_t days() const { return days_; }
  std::size_t windows_per_day() const { return windows_; }
  std::size_t num_groups() const { return groups_.size(); }
  const std::vector<std::string>& group_names() const { return groups_; }

  const TimelineCell& cell(std::size_t day, std::size_t window,
                           std::size_t group) const;
  const GroupSketches& sketches(std::size_t group) const;

  /// Checkpoint-restore hooks (exp/checkpoint.cpp): mutable access to one
  /// cell / one group's sketches after begin_run() declared the grid. The
  /// cells are integers and the sketches rebuild through their raw-count
  /// hooks, so a restored aggregator is bit-identical to the original.
  TimelineCell& mutable_cell(std::size_t day, std::size_t window,
                             std::size_t group);
  GroupSketches& mutable_sketches(std::size_t group);

  /// Sum of a group's cells over the whole grid (per-round snapshots in
  /// the sequential engine's decision log).
  TimelineCell group_total(std::size_t group) const;

 private:
  std::size_t cell_index(std::size_t day, std::size_t window,
                         std::size_t group) const {
    return (day * windows_ + window) * groups_.size() + group;
  }

  std::uint64_t seed_ = 0;
  std::size_t days_ = 0;
  std::size_t windows_ = 0;
  std::vector<std::string> groups_;
  std::vector<TimelineCell> cells_;       ///< [(day*W + window)*G + group]
  std::vector<GroupSketches> sketches_;   ///< [group]
};

}  // namespace bba::obs
