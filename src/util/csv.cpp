#include "util/csv.hpp"

#include <cstdio>
#include <fstream>

namespace bba::util {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

CsvRow parse_csv_line(const std::string& line) {
  CsvRow fields;
  std::string::size_type start = 0;
  while (true) {
    const auto comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(trim(line.substr(start)));
      break;
    }
    fields.push_back(trim(line.substr(start, comma - start)));
    start = comma + 1;
  }
  return fields;
}

bool read_csv(const std::string& path, std::vector<CsvRow>& rows,
              bool expect_header, CsvRow* header) {
  std::ifstream in(path);
  if (!in) return false;
  rows.clear();
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    CsvRow fields = parse_csv_line(trimmed);
    if (expect_header && !saw_header) {
      saw_header = true;
      if (header != nullptr) *header = std::move(fields);
      continue;
    }
    rows.push_back(std::move(fields));
  }
  return true;
}

CsvWriter::CsvWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::comment(const std::string& text) {
  if (file_ == nullptr) return;
  std::fprintf(file_, "# %s\n", text.c_str());
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(file_, "%s%s", i > 0 ? "," : "", fields[i].c_str());
  }
  std::fprintf(file_, "\n");
}

void CsvWriter::row(const std::vector<double>& fields) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(file_, "%s%.10g", i > 0 ? "," : "", fields[i]);
  }
  std::fprintf(file_, "\n");
}

}  // namespace bba::util
