// Fleet health monitor: deterministic online drift detection, SLO burn
// alerts, and alert-triggered trace capture.
//
// The source paper's result came from *watching* a production fleet --
// per-day, per-window dashboards of rebuffer rate and video rate across
// A/B traffic. The HealthMonitor is the layer that reacts to that stream:
// it rides the canonical sequential fold in exp::SessionBlockRunner (the
// same single-writer point the TimelineAggregator uses, so scalar,
// batched-kernel, and replayed sessions all feed it identically) and runs
// per-(group, metric) online detectors over per-(day, window) cell
// aggregates:
//
//   * EWMA control bands and CUSUM change-point detection (stats/detect.hpp)
//     over four derived metrics -- rebuffer ratio, mean join time, played
//     rate, fault-stall share;
//   * windowed SLO burn rules ("rebuffer ratio > X for N consecutive
//     windows", ditto join time).
//
// Determinism contract, same as everything else in the repo:
//
//   * Detector state is a pure function of the fold prefix. Cells close in
//     canonical (day, window) order -- a cell is complete the moment the
//     first session of a later cell arrives -- and the detector arithmetic
//     is a fixed double-op sequence, so the emitted "bba.alerts.v1" JSONL
//     artifact is byte-identical at any --threads.
//   * The whole monitor state (cells, detector doubles as raw bits, alert
//     log, capture queue) serializes into the checkpoint container's ALRT
//     section (exp/checkpoint.cpp), so kill + --resume reproduces the
//     artifact byte for byte.
//   * Under --shard K/M the per-shard cell subsequence would differ from
//     the unsharded fold, so sharded runs set deferred(): cells accumulate
//     but no detector consumes them. bba_merge unions the disjoint cells,
//     and the merged checkpoint's --resume render refold()s the full grid
//     in canonical order -- producing the unsharded run's bytes exactly
//     (alert lines carry no per-session data, only cell aggregates).
//
// A fired alert flips the run into evidence capture for its (day, window,
// group) cell: the monitor tracks the top-K offender sessions per (group,
// metric) in the open cell, and the harness drains take_captures() after
// the grid completes, re-simulating each offender through the trace sink
// with an {"ev":"alert",...} marker line (the PR 3 anomaly machinery
// generalized from one static threshold to monitor-driven capture).
//
// docs/monitoring.md documents detectors, schema, and capture semantics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeline.hpp"
#include "sim/metrics.hpp"
#include "stats/detect.hpp"

namespace bba::obs {

/// The cell metrics the detectors watch, in detector order.
inline constexpr std::size_t kNumMonitorMetrics = 4;
/// The SLO burn rules per group: rebuffer-ratio, then join-time.
inline constexpr std::size_t kNumMonitorSlos = 2;
const char* monitor_metric_name(std::size_t metric);

/// Derives metric `metric` from a closed cell: rebuffer_ratio (stall /
/// (play + stall)), join_s (mean startup delay), rate_kbps (play-weighted
/// delivered rate), fault_share (fault-attributed stalls / stalls). A
/// fixed expression over the integer cell fields, so the double is a pure
/// function of the cell.
double monitor_metric_value(const TimelineCell& cell, std::size_t metric);

/// Detector and SLO parameters (--alert-spec / $BBA_ALERT_SPEC).
struct MonitorSpec {
  std::uint64_t warmup = 8;     ///< baseline cells before detectors arm
  double ewma_alpha = 0.2;
  double ewma_k = 3.0;          ///< control band half-width in sds
  double cusum_k = 0.5;
  double cusum_h = 5.0;
  double sd_floor = 0.05;       ///< sd floor as a fraction of |mean|
  double slo_rebuffer_ratio = 0.02;
  std::uint64_t slo_rebuffer_windows = 3;
  double slo_join_s = 10.0;
  std::uint64_t slo_join_windows = 3;
  std::uint64_t top_k = 2;      ///< offender sessions captured per alert
  bool capture = true;          ///< alert-triggered trace capture on/off

  /// Parses "key=value,key=value" (keys above, e.g. "warmup=2,cusum_h=1").
  /// Returns false with a one-line diagnostic in *error.
  static bool parse(const std::string& spec, MonitorSpec* out,
                    std::string* error);

  /// The `"spec":{...}` JSON object for the artifact header. Fixed key
  /// order; byte-stable for identical specs.
  std::string to_json() const;
};

/// One alert-triggered capture request: re-simulate session (day, window,
/// session) under group `group` with `marker` embedded in its trace.
struct MonitorCapture {
  std::uint64_t day = 0;
  std::uint64_t window = 0;
  std::uint64_t group = 0;
  std::uint64_t session = 0;
  std::string marker;  ///< the {"ev":"alert",...} trace line, '\n'-terminated
};

/// Top-K offender candidates for one (group, metric) in the open cell.
struct MonitorCandidates {
  std::vector<std::uint64_t> sessions;
  std::vector<double> scores;
};

/// The monitor's complete internal state -- plain data so the checkpoint
/// layer serializes it field by field (ALRT section) and a restored
/// monitor is bit-identical to the interrupted one.
struct MonitorState {
  bool deferred = false;    ///< sharded run: accumulate cells, no detectors
  std::uint64_t seed = 0;
  std::size_t days = 0;
  std::size_t windows = 0;
  std::vector<std::string> groups;
  std::vector<TimelineCell> cells;    ///< [(day*W + window)*G + group]
  std::uint64_t consumed = 0;  ///< linear (day*W+window) cells consumed
  std::uint64_t open = 0;      ///< linear cell currently accumulating
  std::vector<stats::EwmaState> ewma;    ///< [group*kNumMonitorMetrics + m]
  std::vector<stats::CusumState> cusum;  ///< [group*kNumMonitorMetrics + m]
  std::vector<stats::BurnState> burn;    ///< [group*2 + slo]
  std::uint64_t alert_seq = 0;
  std::string alert_log;  ///< concatenated {"ev":"alert",...} lines
  std::vector<MonitorCandidates> cand;   ///< [group*kNumMonitorMetrics + m]
  std::vector<MonitorCapture> pending;   ///< fired, not yet drained
};

class HealthMonitor {
 public:
  explicit HealthMonitor(MonitorSpec spec);

  const MonitorSpec& spec() const { return spec_; }

  /// Sharded runs defer detector folding (see the file comment). Set
  /// before the first record().
  void set_deferred(bool deferred) { st_.deferred = deferred; }
  bool deferred() const { return st_.deferred; }

  /// Declares the grid. Idempotent with the TimelineAggregator's rules:
  /// later calls must agree on seed/groups/windows and may only grow days.
  void begin_run(std::uint64_t seed, const std::vector<std::string>& groups,
                 std::size_t days, std::size_t windows_per_day);

  bool configured() const { return !st_.groups.empty(); }

  /// Folds one finished session. Call from the block runner's sequential
  /// fold in canonical (day, window, session) order; crossing into a new
  /// (day, window) cell closes every earlier cell through the detectors.
  /// Zero steady-state allocations on the no-alert path.
  void record(std::size_t day, std::size_t window, std::size_t group,
              std::uint64_t session, const sim::SessionMetrics& m);

  /// Closes the trailing open cell (detectors consume through the end of
  /// the grid). Idempotent; a no-op while deferred.
  void finalize();

  /// Rebuilds the detector fold from the accumulated cells: resets every
  /// detector and the alert log, clears deferred, and consumes the full
  /// grid in canonical order. Used when a merged (sharded) checkpoint is
  /// rendered -- the refolded artifact equals the unsharded run's byte for
  /// byte. No captures are generated (per-session data is gone).
  void refold();

  /// Drains the fired capture requests in canonical (day, window, group,
  /// session) order, deduplicated (first-firing alert's marker wins).
  std::vector<MonitorCapture> take_captures();

  std::uint64_t alerts_fired() const { return st_.alert_seq; }

  /// The "bba.alerts.v1" artifact: header line, the alert lines in fold
  /// order, and an {"ev":"summary",...} trailer. No trailing newline. A
  /// pure function of (spec, cells) once finalized.
  std::string render() const;

  // Checkpoint hooks (exp/checkpoint.cpp).
  const MonitorState& state() const { return st_; }
  void restore(MonitorState st);

 private:
  void consume_through(std::uint64_t linear_end);
  void consume_cell(std::uint64_t linear);
  void note_candidate(std::size_t group, std::uint64_t session,
                      const sim::SessionMetrics& m);
  void enqueue_captures(std::uint64_t linear, std::size_t group,
                        std::size_t metric, const std::string& marker);

  MonitorSpec spec_;
  MonitorState st_;
};

}  // namespace bba::obs
