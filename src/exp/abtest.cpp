#include "exp/abtest.hpp"

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/session_key.hpp"
#include "runtime/session_executor.hpp"
#include "sim/metrics.hpp"
#include "util/assert.hpp"

namespace bba::exp {

namespace {

/// Accumulates one session into a window cell; rate averages are
/// play-time weighted.
void accumulate(WindowMetrics& cell, const sim::SessionMetrics& m) {
  const double hours = m.play_s / 3600.0;
  const double prev_hours = cell.play_hours;
  cell.play_hours += hours;
  cell.rebuffer_count += static_cast<double>(m.rebuffer_count);
  cell.rebuffer_s += m.rebuffer_s;
  cell.switch_count += static_cast<double>(m.switch_count);
  cell.sessions += 1;
  if (cell.play_hours > 0.0) {
    const double w_new = hours / cell.play_hours;
    cell.avg_rate_bps += (m.avg_rate_bps - cell.avg_rate_bps) * w_new;
    // Startup/steady use the same play-hours weighting for simplicity; the
    // startup window is a fixed 120 s per session, so the bias is tiny.
    cell.startup_rate_bps +=
        (m.startup_rate_bps - cell.startup_rate_bps) * w_new;
    if (m.has_steady) {
      cell.steady_rate_bps +=
          (m.steady_rate_bps - cell.steady_rate_bps) * w_new;
    } else if (prev_hours == 0.0) {
      cell.steady_rate_bps = m.avg_rate_bps;
    }
  }
}

}  // namespace

std::size_t AbTestResult::group_index(const std::string& name) const {
  for (std::size_t i = 0; i < group_names.size(); ++i) {
    if (group_names[i] == name) return i;
  }
  BBA_ASSERT(false, "unknown group name");
  return 0;
}

WindowMetrics AbTestResult::merged(std::size_t group,
                                   std::size_t window) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  WindowMetrics out;
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    const WindowMetrics& c = day[window];
    const double total = out.play_hours + c.play_hours;
    if (total > 0.0) {
      const double w_new = c.play_hours / total;
      out.avg_rate_bps += (c.avg_rate_bps - out.avg_rate_bps) * w_new;
      out.startup_rate_bps +=
          (c.startup_rate_bps - out.startup_rate_bps) * w_new;
      out.steady_rate_bps +=
          (c.steady_rate_bps - out.steady_rate_bps) * w_new;
    }
    out.play_hours = total;
    out.rebuffer_count += c.rebuffer_count;
    out.rebuffer_s += c.rebuffer_s;
    out.switch_count += c.switch_count;
    out.sessions += c.sessions;
  }
  return out;
}

std::vector<double> AbTestResult::per_day(
    std::size_t group, std::size_t window,
    const std::function<double(const WindowMetrics&)>& metric) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  std::vector<double> values;
  values.reserve(cells[group].size());
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    values.push_back(metric(day[window]));
  }
  return values;
}

AbTestResult run_ab_test(const std::vector<Group>& groups,
                         const media::VideoLibrary& library,
                         const AbTestConfig& cfg) {
  BBA_ASSERT(!groups.empty(), "at least one group required");
  BBA_ASSERT(cfg.days >= 1 && cfg.sessions_per_window >= 1,
             "experiment dimensions must be >= 1");

  const Population population(cfg.population);

  AbTestResult result;
  result.group_names.reserve(groups.size());
  for (const auto& g : groups) result.group_names.push_back(g.name);
  result.cells.assign(
      groups.size(),
      std::vector<std::vector<WindowMetrics>>(
          cfg.days, std::vector<WindowMetrics>(kWindowsPerDay)));

  // One task per (day, window, session) triple; every group replays the
  // task's shared environment (common random numbers). Tasks write their
  // per-group metrics into disjoint slots; the fold then accumulates them
  // in canonical index order -- the identical floating-point sequence the
  // sequential loop performs, so the result is bit-independent of the
  // thread count.
  const std::size_t n_groups = groups.size();
  const std::size_t per_day = kWindowsPerDay * cfg.sessions_per_window;
  const std::size_t n_tasks = cfg.days * per_day;
  std::vector<sim::SessionMetrics> metrics(n_tasks * n_groups);

  runtime::SessionExecutor executor(cfg.threads);
  executor.execute(
      n_tasks,
      [&](std::size_t task) {
        const std::size_t day = task / per_day;
        const std::size_t window = (task % per_day) / cfg.sessions_per_window;
        const std::size_t user = task % cfg.sessions_per_window;
        // Common random numbers: every stream is a pure function of
        // (seed, day, window, user) and shared by all groups.
        const SessionKey key{cfg.seed, day, window, user};
        const UserEnvironment env = population.environment_for(key);
        const net::CapacityTrace trace = population.trace_for(env, key);
        const SessionSpec spec = session_for(library, cfg.workload, key);
        const media::Video& video = library.at(spec.video_index);

        sim::PlayerConfig player = cfg.player;
        player.watch_duration_s = spec.watch_duration_s;

        for (std::size_t g = 0; g < n_groups; ++g) {
          auto algorithm = groups[g].factory();
          BBA_ASSERT(algorithm != nullptr, "group factory returned null");
          const sim::SessionResult session =
              sim::simulate_session(video, trace, *algorithm, player);
          metrics[task * n_groups + g] = sim::compute_metrics(session);
        }
      },
      [&](std::size_t task) {
        const std::size_t day = task / per_day;
        const std::size_t window = (task % per_day) / cfg.sessions_per_window;
        for (std::size_t g = 0; g < n_groups; ++g) {
          accumulate(result.cells[g][day][window],
                     metrics[task * n_groups + g]);
        }
      });
  return result;
}

AbrFactory make_control_factory() {
  return [] { return std::make_unique<abr::ControlAbr>(); };
}

AbrFactory make_rmin_factory() {
  return [] { return std::make_unique<abr::RMinAlways>(); };
}

AbrFactory make_bba0_factory() {
  return [] { return std::make_unique<core::Bba0>(); };
}

AbrFactory make_bba1_factory() {
  return [] { return std::make_unique<core::Bba1>(); };
}

AbrFactory make_bba2_factory() {
  return [] { return std::make_unique<core::Bba2>(); };
}

AbrFactory make_bba_others_factory() {
  return [] { return std::make_unique<core::BbaOthers>(); };
}

}  // namespace bba::exp
