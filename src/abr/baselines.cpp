#include "abr/baselines.hpp"

#include "util/assert.hpp"

namespace bba::abr {

std::size_t RMinAlways::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  return obs.video->ladder().min_index();
}

std::size_t RMaxAlways::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  return obs.video->ladder().max_index();
}

std::size_t FixedRate::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  return std::min(index_, obs.video->ladder().max_index());
}

ThroughputAbr::ThroughputAbr(
    std::unique_ptr<net::ThroughputEstimator> estimator, double safety,
    std::size_t start_index)
    : estimator_(std::move(estimator)),
      safety_(safety),
      start_index_(start_index) {
  BBA_ASSERT(estimator_ != nullptr, "ThroughputAbr requires an estimator");
  BBA_ASSERT(safety_ > 0.0 && safety_ <= 1.0, "safety must be in (0, 1]");
}

std::size_t ThroughputAbr::choose_rate(const Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();
  if (obs.last_throughput_bps > 0.0) {
    estimator_->add_sample(obs.last_throughput_bps, obs.last_download_s);
  }
  if (!estimator_->has_estimate()) {
    return std::min(start_index_, ladder.max_index());
  }
  return ladder.highest_not_above(safety_ * estimator_->estimate_bps());
}

void ThroughputAbr::reset() { estimator_->reset(); }

}  // namespace bba::abr
