// The ABR algorithm interface.
//
// The simulated player calls `choose_rate()` once per chunk request, exactly
// as the Netflix browser player invokes its downloaded ABR module: rates can
// only change on chunk boundaries ("we can only pick a new rate when a chunk
// finishes arriving"), and the algorithm sees the playback buffer, the
// previous chunk's throughput, and the manifest (per-chunk sizes at every
// rate).
#pragma once

#include <cstddef>
#include <string>

#include "media/video.hpp"

namespace bba::abr {

/// Everything an ABR algorithm may observe when selecting the rate for the
/// next chunk. Produced by the player before each request.
struct Observation {
  /// Index of the chunk about to be requested (0-based).
  std::size_t chunk_index = 0;

  /// Current playback buffer level, in seconds of video.
  double buffer_s = 0.0;

  /// Player buffer capacity (B_max), seconds. 240 s in the paper's player.
  double buffer_max_s = 240.0;

  /// Wall-clock session time, seconds since the first request.
  double now_s = 0.0;

  /// Ladder index used for the previous chunk. Meaningless when
  /// `chunk_index == 0` (use the algorithm's own starting rate).
  std::size_t prev_rate_index = 0;

  /// Average throughput of the last completed chunk download (bits/s);
  /// 0 before the first chunk completes.
  double last_throughput_bps = 0.0;

  /// Wall-clock duration of the last chunk download, seconds.
  double last_download_s = 0.0;

  /// Buffer change over the last chunk: Delta-B = V - download_time while
  /// playing (the signal BBA-2's startup uses). 0 before the first chunk.
  double delta_buffer_s = 0.0;

  /// True once playback has started (false while prebuffering).
  bool playing = false;

  /// The title being streamed: ladder + chunk size table.
  const media::Video* video = nullptr;
};

/// A flattened, plain-data description of a BBA decision policy, consumed
/// by the batched session kernel (sim/batch_player.hpp). The kernel inlines
/// the whole per-chunk decision -- reservoir, chunk map, hysteresis
/// barriers, BBA-2's startup ramp -- so it cannot call through the virtual
/// choose_rate() interface; instead an algorithm that is exactly one of the
/// kernel-supported policies exports its configuration here and the kernel
/// reproduces its decisions bit for bit (enforced by tests/test_sim_batch).
/// Plain fields only: abr must not depend on core.
struct BatchDecisionProfile {
  /// True: BBA-2 (startup ramp active from chunk 0, outage accrual gated
  /// on startup exit). False: BBA-1 (steady-state algorithm throughout).
  bool startup = false;
  /// BBA-2 startup Delta-B thresholds (fractions of V); unused for BBA-1.
  double threshold_at_empty = 0.875;
  double threshold_at_knee = 0.5;

  // core::Bba1Config / ReservoirConfig mirror.
  double lookahead_s = 480.0;
  double reservoir_min_s = 8.0;
  double reservoir_max_s = 140.0;
  bool cache_window_sums = true;
  double upper_knee_fraction = 0.9;
  std::size_t start_index = 0;
  bool monotone_reservoir = false;
  bool outage_protection = true;
  double outage_accrual_s = 0.4;
  double outage_cap_s = 80.0;
  double outage_accrue_below_fraction = 0.75;
  double min_cushion_s = 60.0;
};

/// Base class for rate-adaptation algorithms. Implementations are
/// single-session state machines; call `reset()` (or construct fresh) per
/// session.
class RateAdaptation {
 public:
  virtual ~RateAdaptation() = default;

  /// Returns the ladder index to request for `obs.chunk_index`.
  /// Must return a valid index for `obs.video->ladder()`.
  virtual std::size_t choose_rate(const Observation& obs) = 0;

  /// Clears per-session state (new session or seek).
  virtual void reset() {}

  /// Short algorithm name for reports ("control", "bba0", ...).
  virtual std::string name() const = 0;

  /// Fills `out` with an exact plain-data description of this algorithm's
  /// decision policy and returns true, or returns false when no such
  /// description exists (the default). Overriders must guarantee the
  /// batched kernel driven by `out` chooses the identical rate sequence as
  /// choose_rate() on every input -- which is why core::Bba1/Bba2 only
  /// answer for their exact dynamic type, never for derived classes.
  virtual bool batch_profile(BatchDecisionProfile* out) const {
    (void)out;
    return false;
  }
};

}  // namespace bba::abr
