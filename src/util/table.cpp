#include "util/table.hpp"

#include <cstdarg>
#include <cstdio>

namespace bba::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
    return out;
  };
  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string fmt_double(double v, int decimals) {
  return format("%.*f", decimals, v);
}

}  // namespace bba::util
