# Empty dependencies file for bba_sim.
# This may be replaced when dependencies are built.
