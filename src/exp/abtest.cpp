#include "exp/abtest.hpp"

#include <cstdint>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "exp/session_key.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "runtime/session_executor.hpp"
#include "sim/metrics.hpp"
#include "sim/session_sink.hpp"
#include "util/assert.hpp"

namespace bba::exp {

namespace {

/// Accumulates one session into a window cell; rate averages are
/// play-time weighted.
void accumulate(WindowMetrics& cell, const sim::SessionMetrics& m) {
  const double hours = m.play_s / 3600.0;
  cell.play_hours += hours;
  cell.rebuffer_count += static_cast<double>(m.rebuffer_count);
  cell.rebuffer_s += m.rebuffer_s;
  cell.fault_stall_count += static_cast<double>(m.fault_stall_count);
  cell.switch_count += static_cast<double>(m.switch_count);
  cell.sessions += 1;
  if (cell.play_hours > 0.0) {
    const double w_new = hours / cell.play_hours;
    cell.avg_rate_bps += (m.avg_rate_bps - cell.avg_rate_bps) * w_new;
    // Startup uses the total play-hours weight for simplicity; the startup
    // window is a fixed 120 s per session, so the bias is tiny.
    cell.startup_rate_bps +=
        (m.startup_rate_bps - cell.startup_rate_bps) * w_new;
  }
  // Steady state is weighted by steady play hours over the sessions that
  // actually reached it: a session's steady_rate_bps covers only its play
  // time past 120 s, and short sessions carry no steady signal at all.
  // Weighting by total play hours (as avg/startup do) would let both
  // effects bias the cell toward startup-heavy sessions.
  if (m.has_steady) {
    const double steady_hours = m.steady_play_s / 3600.0;
    cell.steady_play_hours += steady_hours;
    if (cell.steady_play_hours > 0.0) {
      const double w_steady = steady_hours / cell.steady_play_hours;
      cell.steady_rate_bps +=
          (m.steady_rate_bps - cell.steady_rate_bps) * w_steady;
    }
  }
}

}  // namespace

std::size_t AbTestResult::group_index(const std::string& name) const {
  for (std::size_t i = 0; i < group_names.size(); ++i) {
    if (group_names[i] == name) return i;
  }
  BBA_ASSERT(false, "unknown group name");
  return 0;
}

WindowMetrics AbTestResult::merged(std::size_t group,
                                   std::size_t window) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  WindowMetrics out;
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    const WindowMetrics& c = day[window];
    const double total = out.play_hours + c.play_hours;
    if (total > 0.0) {
      const double w_new = c.play_hours / total;
      out.avg_rate_bps += (c.avg_rate_bps - out.avg_rate_bps) * w_new;
      out.startup_rate_bps +=
          (c.startup_rate_bps - out.startup_rate_bps) * w_new;
    }
    const double steady_total = out.steady_play_hours + c.steady_play_hours;
    if (steady_total > 0.0) {
      const double w_steady = c.steady_play_hours / steady_total;
      out.steady_rate_bps +=
          (c.steady_rate_bps - out.steady_rate_bps) * w_steady;
    }
    out.steady_play_hours = steady_total;
    out.play_hours = total;
    out.rebuffer_count += c.rebuffer_count;
    out.rebuffer_s += c.rebuffer_s;
    out.fault_stall_count += c.fault_stall_count;
    out.switch_count += c.switch_count;
    out.sessions += c.sessions;
  }
  return out;
}

std::vector<double> AbTestResult::per_day(
    std::size_t group, std::size_t window,
    const std::function<double(const WindowMetrics&)>& metric) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  std::vector<double> values;
  values.reserve(cells[group].size());
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    values.push_back(metric(day[window]));
  }
  return values;
}

AbTestResult run_ab_test(const std::vector<Group>& groups,
                         const media::VideoLibrary& library,
                         const AbTestConfig& cfg) {
  BBA_ASSERT(!groups.empty(), "at least one group required");
  BBA_ASSERT(cfg.days >= 1 && cfg.sessions_per_window >= 1,
             "experiment dimensions must be >= 1");

  // Observability is strictly observational: the registry counts events,
  // the profiler times phases, and the trace sink tees next to the metrics
  // sink. None of it feeds a simulation value, so results stay
  // bit-identical with any of it on or off (tests/test_obs_trace.cpp).
  obs::Observability* o = obs::global();
  obs::MetricsRegistry* registry = o != nullptr ? o->metrics.get() : nullptr;
  obs::Profiler* profiler = o != nullptr ? o->profiler.get() : nullptr;
  obs::TraceCollector* tracer =
      (o != nullptr && o->trace != nullptr && o->trace->ok())
          ? o->trace.get()
          : nullptr;
  obs::ScopedTimer run_span(profiler, 0, "run_ab_test");

  const Population population(cfg.population);

  AbTestResult result;
  result.group_names.reserve(groups.size());
  for (const auto& g : groups) result.group_names.push_back(g.name);
  result.cells.assign(
      groups.size(),
      std::vector<std::vector<WindowMetrics>>(
          cfg.days, std::vector<WindowMetrics>(kWindowsPerDay)));

  // One task per (day, window, session) triple; every group replays the
  // task's shared environment (common random numbers). Tasks write their
  // per-group metrics into disjoint slots; the fold then accumulates them
  // in canonical index order -- the identical floating-point sequence the
  // sequential loop performs, so the result is bit-independent of the
  // thread count.
  const std::size_t n_groups = groups.size();
  const std::size_t per_day = kWindowsPerDay * cfg.sessions_per_window;
  const std::size_t n_tasks = cfg.days * per_day;
  std::vector<sim::SessionMetrics> metrics(n_tasks * n_groups);

  runtime::SessionExecutor executor(cfg.threads);

  // Per-thread scratch, indexed by the executor slot: the trace is rebuilt
  // in place (CapacityTrace::assign ping-pongs storage with the generation
  // buffers), metrics stream through a StreamingMetricsSink (bit-identical
  // to compute_metrics over a recording), and ABR instances are reused
  // across sessions where the group allows. Steady state does zero heap
  // allocation per session. None of this affects the produced values, so
  // the determinism contract holds.
  struct SessionScratch {
    net::TraceScratch trace_scratch;
    net::FaultScratch fault_scratch;
    net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
    sim::StreamingMetricsSink sink;
    // Created by the collector (make_sink), so the scratch serializes in
    // whatever format the run selected -- JSONL lines or btrace blocks.
    std::unique_ptr<obs::SessionTraceSink> trace_sink;
    std::vector<std::unique_ptr<abr::RateAdaptation>> abrs;
  };
  std::vector<SessionScratch> scratch(executor.threads());
  for (auto& s : scratch) s.abrs.resize(n_groups);

  // Traced sessions serialize into per-task buffers during the parallel
  // map and are written during the sequential fold, in canonical task
  // order -- the trace file bytes are therefore identical at every thread
  // count, exactly like the metrics.
  struct TaskTrace {
    std::string lines;
    std::uint32_t emitted = 0;
    std::uint32_t anomalies = 0;
  };
  std::vector<TaskTrace> task_trace(tracer != nullptr ? n_tasks : 0);

  executor.execute_slotted(
      n_tasks,
      [&](std::size_t task, std::size_t slot) {
        obs::SlotBinding metrics_binding(registry, slot);
        const std::size_t day = task / per_day;
        const std::size_t window = (task % per_day) / cfg.sessions_per_window;
        const std::size_t user = task % cfg.sessions_per_window;
        // Common random numbers: every stream is a pure function of
        // (seed, day, window, user) and shared by all groups.
        const SessionKey key{cfg.seed, day, window, user};
        const UserEnvironment env = population.environment_for(key);
        SessionScratch& s = scratch[slot];
        population.trace_for_into(env, key, s.trace_scratch, s.trace);
        // Fault injection rides the dedicated kFaults substream: with an
        // empty plan this is a no-op and nothing downstream changes byte
        // for byte.
        const bool faulted = population.has_faults();
        if (faulted) population.inject_faults(key, s.fault_scratch, s.trace);
        const SessionSpec spec = session_for(library, cfg.workload, key);
        const media::Video& video = library.at(spec.video_index);

        sim::PlayerConfig player = cfg.player;
        player.watch_duration_s = spec.watch_duration_s;
        if (faulted) player.faults = &s.fault_scratch.events;

        // One sampling decision per task, shared by every group: the
        // control and treatment timelines of a sampled session land
        // side by side in the trace, which is what makes the A/B
        // comparison of a single environment readable.
        const bool traced =
            tracer != nullptr && tracer->sampled(cfg.seed, day, window, user);

        for (std::size_t g = 0; g < n_groups; ++g) {
          std::unique_ptr<abr::RateAdaptation> fresh;
          abr::RateAdaptation* algorithm;
          if (groups[g].reuse_instances) {
            if (s.abrs[g] == nullptr) s.abrs[g] = groups[g].factory();
            algorithm = s.abrs[g].get();
          } else {
            fresh = groups[g].factory();
            algorithm = fresh.get();
          }
          BBA_ASSERT(algorithm != nullptr, "group factory returned null");
          // Unsampled sessions run at full speed with the plain sink; the
          // anomaly trigger is evaluated post hoc on the finished metrics
          // (the exact predicate the trace sink applies to its own event
          // stream). simulate_session is a pure function of its inputs --
          // it resets the ABR on entry -- so the rare session that needs
          // capturing is simply re-simulated with the tee attached,
          // reproducing the identical timeline. Tracing therefore costs
          // the unsampled, healthy majority nothing per event.
          bool need_tee = traced;
          bool replay = false;
          if (tracer != nullptr && !need_tee) {
            sim::simulate_session(video, s.trace, *algorithm, player, s.sink);
            const sim::SessionMetrics& m = s.sink.metrics();
            const obs::TraceConfig& tc = tracer->config();
            need_tee = tc.anomalies_enabled() &&
                       (m.rebuffer_s >= tc.anomaly_rebuffer_s ||
                        (tc.capture_abandoned && m.abandoned));
            replay = need_tee;
          }
          if (tracer != nullptr && need_tee) {
            // A replay mutes the metrics registry so the re-simulated
            // session is not double-counted.
            obs::SlotBinding mute(replay ? nullptr : registry, slot);
            if (s.trace_sink == nullptr) s.trace_sink = tracer->make_sink();
            s.trace_sink->begin(tracer->config(), cfg.seed, day, window,
                                user, groups[g].name, traced);
            if (faulted) {
              s.trace_sink->set_faults(&s.fault_scratch.events,
                                       s.trace.cycle_duration_s(),
                                       s.trace.loops());
            }
            sim::TeeSink tee(s.sink, *s.trace_sink);
            sim::simulate_session(video, s.trace, *algorithm, player, tee);
            TaskTrace& tt = task_trace[task];
            if (s.trace_sink->finish(&tt.lines)) {
              ++tt.emitted;
              if (s.trace_sink->anomalous()) ++tt.anomalies;
            }
          } else if (tracer == nullptr) {
            sim::simulate_session(video, s.trace, *algorithm, player, s.sink);
          }
          metrics[task * n_groups + g] = s.sink.metrics();
        }
      },
      [&](std::size_t task) {
        const std::size_t day = task / per_day;
        const std::size_t window = (task % per_day) / cfg.sessions_per_window;
        for (std::size_t g = 0; g < n_groups; ++g) {
          accumulate(result.cells[g][day][window],
                     metrics[task * n_groups + g]);
        }
        if (tracer != nullptr) {
          TaskTrace& tt = task_trace[task];
          for (std::uint32_t i = 0; i < tt.emitted; ++i) {
            tracer->note_session(i < tt.anomalies);
          }
          if (!tt.lines.empty()) {
            tracer->write(tt.lines);
            tt.lines.clear();
            tt.lines.shrink_to_fit();
          }
        }
      });
  if (tracer != nullptr) tracer->flush();
  return result;
}

AbrFactory make_control_factory() {
  return [] { return std::make_unique<abr::ControlAbr>(); };
}

AbrFactory make_rmin_factory() {
  return [] { return std::make_unique<abr::RMinAlways>(); };
}

AbrFactory make_bba0_factory() {
  return [] { return std::make_unique<core::Bba0>(); };
}

AbrFactory make_bba1_factory() {
  return [] { return std::make_unique<core::Bba1>(); };
}

AbrFactory make_bba2_factory() {
  return [] { return std::make_unique<core::Bba2>(); };
}

AbrFactory make_bba_others_factory() {
  return [] { return std::make_unique<core::BbaOthers>(); };
}

}  // namespace bba::exp
