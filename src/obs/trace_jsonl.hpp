// Shared JSONL serialization for session traces.
//
// Two writers must produce the *same bytes* for one session: the JSONL
// sink (obs/trace.hpp) serializing live, and `bba_trace cat` re-serializing
// a columnar binary block (obs/btrace.hpp). Sharing printf-style helpers is
// not enough -- the event lines quantize doubles to microsecond fixed point
// before printing, and the binary format stores that quantized integer, not
// the double. This header therefore centralizes three things:
//
//  * Num -- a JSON number carried either as the original double or as the
//    already-quantized micro integer. Num::of(double) performs the exact
//    quantization the JSONL event lines use; append_num prints both forms
//    through one code path, so a Num built from the double at capture time
//    and a Num rebuilt from the stored micro at decode time print
//    identically.
//  * One append_* function per trace line (session header, fault, off,
//    switch, stall, chunk). Every byte of the schema lives here, once.
//  * walk_session_lines -- the chronological merge of chunk-derived lines
//    with stall lines. The JSONL sink and the binary encoder both drive
//    their emission through this walk, so the *order* of lines (decided by
//    double comparisons that quantization could flip) is computed exactly
//    once, in double precision, at capture time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "sim/session_result.hpp"

namespace bba::obs::jsonl {

/// A JSON number ready to print the way the trace event lines print it:
/// non-negative finite doubles below 9e12 as microsecond fixed point with
/// trailing zeros trimmed, everything else via printf %.10g.
struct Num {
  bool is_micro = false;
  std::uint64_t micro = 0;  ///< valid when is_micro
  double raw = 0.0;         ///< valid when !is_micro

  /// The event-line quantization. A sampled session serializes thousands
  /// of doubles; snprintf %.10g at a few hundred ns each would dominate
  /// the whole tracing budget, so the fast range prints from the micro
  /// integer (~10x cheaper). Values outside it (negative, >= ~9e12,
  /// non-finite) keep the double and fall back to %.10g.
  static Num of(double v) {
    if (!(v >= 0.0) || v >= 9.0e12) return Num{false, 0, v};
    return Num{true, static_cast<std::uint64_t>(v * 1e6 + 0.5), 0.0};
  }
  static Num from_micro(std::uint64_t m) { return Num{true, m, 0.0}; }
};

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Escapes the JSON specials (and drops control bytes) so a hostile group
/// name cannot corrupt the stream.
void append_escaped(std::string& out, std::string_view s);

void append_u64(std::string& out, std::uint64_t v);

/// Prints `micro` as a fixed-point decimal (6 fractional digits, trailing
/// zeros trimmed, no exponent) -- the fast path of append_num.
void append_micro(std::string& out, std::uint64_t micro);

void append_num(std::string& out, const Num& n);

inline void append_double(std::string& out, double v) {
  append_num(out, Num::of(v));
}

// --- Line emitters --------------------------------------------------------
// One function per "ev" kind; docs/observability.md documents the schema.

/// Everything the `{"ev":"session",...}` header line carries. The fault
/// keys are emitted only when has_faults is set, keeping faults-disabled
/// trace bytes identical to a build without fault injection.
struct SessionHeader {
  std::uint64_t seed = 0, day = 0, window = 0, session = 0;
  std::string_view group;
  bool sampled = false, anomaly = false;
  double v_s = 0.0, join_s = 0.0, played_s = 0.0, wall_s = 0.0;
  double rebuffer_s = 0.0;
  std::size_t rebuffer_count = 0, chunks = 0;
  bool started = false, abandoned = false;
  bool has_faults = false;
  std::uint64_t fault_count = 0;
  Num trace_cycle_s{};
  bool trace_loops = false;
};

void append_session_line(std::string& out, const SessionHeader& h);
void append_fault_line(std::string& out, std::string_view kind, Num start_s,
                       Num dur_s, Num factor);
void append_off_line(std::string& out, std::uint64_t k, Num start_s,
                     Num wait_s);
void append_switch_line(std::string& out, std::uint64_t k, Num t_s,
                        std::uint64_t from, std::uint64_t to);
/// `fault_flag`: -1 omits the "fault" key (no fault injection attached),
/// 0/1 emit "fault":false/true.
void append_stall_line(std::string& out, std::uint64_t k, Num start_s,
                       Num dur_s, int fault_flag);

struct ChunkLine {
  std::uint64_t k = 0, rate = 0;
  Num rate_bps, bits, req_s, fin_s, dl_s, tput_bps, buf_s, pos_s, played_s;
};

void append_chunk_line(std::string& out, const ChunkLine& c);

// --- Event walk -----------------------------------------------------------

/// Chronological merge of the chunk-derived lines (OFF wait, rate switch,
/// chunk completion -- times monotone across chunks) with the stall lines
/// (monotone in start_s). Stalls start mid-download, so they interleave
/// between a chunk's request and its completion. The visitor receives, in
/// emission order:
///
///   v.off(k, start_s, wait_s)
///   v.rate_switch(k, t_s, from, to)
///   v.stall(k, start_s, dur_s, fault_flag)   // fault_flag as above
///   v.chunk(record, played_s)
///
/// All values are the captured doubles; visitors quantize (Num::of) as
/// needed. Both the JSONL sink and the binary encoder use this walk, so a
/// line ordering decided by a sub-microsecond time difference can never
/// diverge between the two formats.
template <class V>
void walk_session_lines(const std::vector<sim::ChunkRecord>& chunks,
                        const std::vector<double>& played_at_chunk,
                        const std::vector<sim::RebufferEvent>& stalls,
                        bool with_fault_flags, V&& v) {
  std::size_t ri = 0;
  auto emit_stalls_before = [&](double t) {
    while (ri < stalls.size() && stalls[ri].start_s <= t) {
      const sim::RebufferEvent& r = stalls[ri++];
      v.stall(static_cast<std::uint64_t>(r.chunk_index), r.start_s,
              r.duration_s,
              with_fault_flags ? (r.during_fault ? 1 : 0) : -1);
    }
  };

  bool has_prev_rate = false;
  std::size_t prev_rate = 0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const sim::ChunkRecord& c = chunks[i];
    if (c.off_wait_s > 0.0) {
      const double off_start = c.request_s - c.off_wait_s;
      emit_stalls_before(off_start);
      v.off(static_cast<std::uint64_t>(c.index), off_start, c.off_wait_s);
    }
    if (has_prev_rate && c.rate_index != prev_rate) {
      emit_stalls_before(c.request_s);
      v.rate_switch(static_cast<std::uint64_t>(c.index), c.request_s,
                    static_cast<std::uint64_t>(prev_rate),
                    static_cast<std::uint64_t>(c.rate_index));
    }
    prev_rate = c.rate_index;
    has_prev_rate = true;
    emit_stalls_before(c.finish_s);
    v.chunk(c, played_at_chunk[i]);
  }
  emit_stalls_before(std::numeric_limits<double>::infinity());
}

}  // namespace bba::obs::jsonl
