file(REMOVE_RECURSE
  "CMakeFiles/fig20_switch_rate_chunkmap.dir/fig20_switch_rate_chunkmap.cpp.o"
  "CMakeFiles/fig20_switch_rate_chunkmap.dir/fig20_switch_rate_chunkmap.cpp.o.d"
  "fig20_switch_rate_chunkmap"
  "fig20_switch_rate_chunkmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_switch_rate_chunkmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
