# Empty compiler generated dependencies file for fig04_aggressive_case_study.
# This may be replaced when dependencies are built.
