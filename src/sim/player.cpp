#include "sim/player.hpp"

#include <algorithm>
#include <limits>
#include <cstdint>
#include <cmath>

#include "net/trace_cursor.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace bba::sim {

void simulate_session(const media::Video& video,
                      const net::CapacityTrace& trace,
                      abr::RateAdaptation& abr, const PlayerConfig& config,
                      SessionSink& sink) {
  BBA_ASSERT(config.buffer_capacity_s >= video.chunk_duration_s(),
             "buffer must hold at least one chunk");
  BBA_ASSERT(config.play_threshold_s > 0.0 && config.resume_threshold_s > 0.0,
             "playback thresholds must be > 0");
  abr.reset();

  const auto& chunks = video.chunks();
  const auto& ladder = video.ladder();
  const double V = chunks.chunk_duration_s();
  const std::size_t n = chunks.num_chunks();
  BBA_ASSERT(config.start_chunk < n, "start chunk beyond the video");
  const double remaining_s =
      V * static_cast<double>(n - config.start_chunk);
  const double watch_limit =
      std::min(config.watch_duration_s, remaining_s);

  sink.on_session_start(V);
  SessionSummary sum;
  sum.chunk_duration_s = V;

  // Session time is (nearly) monotone, so all trace integration runs
  // through one incremental cursor: O(1) amortized per query instead of a
  // binary search each time.
  net::TraceCursor cursor(trace);

  // Per-chunk obs counters batch in locals (plain adds) and flush once at
  // session end -- per-chunk thread-local touches are too expensive here.
  std::uint32_t obs_chunks = 0;
  std::uint32_t obs_offs = 0;
  std::uint32_t obs_switches = 0;

  double t = config.start_wall_s;  // wall clock
  double buffer = 0.0;  // seconds of video buffered
  double played = 0.0;  // seconds of video played
  bool playing = false;
  double stall_start = -1.0;  // >= 0 while stalled after playback started
  std::size_t stall_chunk = 0;
  double last_tp = 0.0;
  double last_dl = 0.0;
  double prev_finish_s = -1.0;  // end of the previous download (TCP idle)
  std::size_t prev_rate = 0;
  const std::optional<net::TcpDownloadModel> tcp =
      config.tcp ? std::optional<net::TcpDownloadModel>(*config.tcp)
                 : std::nullopt;

  // Attribution: did the stall interval overlap an injected fault window?
  // Only evaluated when faults are attached, so fault-free sessions pay
  // nothing.
  auto stall_during_fault = [&](double t0, double t1) {
    return config.faults != nullptr &&
           net::fault_overlaps(*config.faults, trace.cycle_duration_s(),
                               trace.loops(), t0, t1);
  };

  auto close_stall = [&](double resume_t) {
    if (stall_start >= 0.0) {
      obs::count(obs::Counter::kRebuffers);
      obs::observe(obs::Hist::kStallSeconds, resume_t - stall_start);
      sink.on_rebuffer({stall_start, resume_t - stall_start, stall_chunk,
                        stall_during_fault(stall_start, resume_t)});
      stall_start = -1.0;
    }
  };

  for (std::size_t k = config.start_chunk; k < n; ++k) {
    if (played >= watch_limit) break;
    if (t > config.max_wall_s) {
      sum.abandoned = true;
      break;
    }

    // ON-OFF: if the buffer cannot accept another chunk, idle until it can.
    // The buffer can only be full while playing.
    double off_wait = 0.0;
    if (buffer + V > config.buffer_capacity_s) {
      off_wait = buffer + V - config.buffer_capacity_s;
      const double need = watch_limit - played;
      if (need <= off_wait) {
        t += need;
        buffer -= need;
        played = watch_limit;
        break;
      }
      t += off_wait;
      buffer -= off_wait;
      played += off_wait;
    }

    abr::Observation obs;
    obs.chunk_index = k;
    obs.buffer_s = buffer;
    obs.buffer_max_s = config.buffer_capacity_s;
    obs.now_s = t;
    obs.prev_rate_index = prev_rate;
    obs.last_throughput_bps = last_tp;
    obs.last_download_s = last_dl;
    obs.delta_buffer_s = last_dl > 0.0 ? V - last_dl : 0.0;
    obs.playing = playing;
    obs.video = &video;

    const std::size_t r = abr.choose_rate(obs);
    BBA_ASSERT(r < ladder.size(), "ABR returned an out-of-range rate index");

    const double size = chunks.size_bits(r, k);
    const double req_t = t;
    const double idle_s = prev_finish_s < 0.0
                              ? std::numeric_limits<double>::infinity()
                              : req_t - prev_finish_s;
    const double finish =
        config.use_trace_cursor
            ? (tcp ? tcp->finish_time_s(cursor, t, size, idle_s)
                   : cursor.finish_time_s(t, size))
            : (tcp ? tcp->finish_time_s(trace, t, size, idle_s)
                   : trace.finish_time_s(t, size));
    if (!std::isfinite(finish)) {
      // The link is dead for the rest of time: play out and abandon.
      if (playing) {
        const double drain = std::min(buffer, watch_limit - played);
        played += drain;
        t += drain;
        buffer -= drain;
      }
      sum.abandoned = true;
      break;
    }
    const double dl = finish - req_t;

    if (playing) {
      const double need = watch_limit - played;
      if (need <= std::min(dl, buffer)) {
        // The user finishes their session while this chunk is in flight.
        t += need;
        buffer -= need;
        played = watch_limit;
        break;
      }
      if (dl > buffer) {
        // Buffer runs dry mid-download: stall until (at least) the chunk
        // lands. The buffer is not updated during rebuffering (Fig. 4 note).
        stall_start = t + buffer;
        stall_chunk = k;
        played += buffer;
        buffer = 0.0;
        playing = false;
        if (stall_start + config.give_up_stall_s < finish) {
          // The stall will outlast the viewer's patience: they walk out
          // mid-stall (engagement studies tie long rebuffers to abandons).
          obs::count(obs::Counter::kRebuffers);
          obs::observe(obs::Hist::kStallSeconds, config.give_up_stall_s);
          sink.on_rebuffer(
              {stall_start, config.give_up_stall_s, k,
               stall_during_fault(stall_start,
                                  stall_start + config.give_up_stall_s)});
          sum.abandoned = true;
          sum.played_s = played;
          sum.wall_s = stall_start + config.give_up_stall_s;
          obs::count(obs::Counter::kSessions);
          obs::count(obs::Counter::kSessionsAbandoned);
          obs::count(obs::Counter::kChunksDownloaded, obs_chunks);
          obs::count(obs::Counter::kOffPeriods, obs_offs);
          obs::count(obs::Counter::kRateSwitches, obs_switches);
          obs::count(obs::Counter::kCursorQueries, cursor.queries());
          obs::count(obs::Counter::kCursorRewinds, cursor.rewinds());
          sink.on_session_end(sum);
          return;
        }
      } else {
        buffer -= dl;
        played += dl;
      }
    }

    buffer += V;
    t = finish;
    prev_finish_s = finish;

    if (!playing) {
      const double threshold =
          sum.started ? config.resume_threshold_s : config.play_threshold_s;
      // The last chunk always releases playback: there is nothing more to
      // wait for.
      if (buffer >= threshold || k + 1 == n) {
        playing = true;
        if (!sum.started) {
          sum.started = true;
          sum.join_s = t;
        } else {
          close_stall(t);
        }
      }
    }

    last_dl = dl;
    last_tp = dl > 0.0 ? size / dl : 0.0;
    ++obs_chunks;
    obs::observe(obs::Hist::kDownloadSeconds, dl);
    if (off_wait > 0.0) {
      ++obs_offs;
      obs::observe(obs::Hist::kOffWaitSeconds, off_wait);
    }
    if (k > config.start_chunk && r != prev_rate) ++obs_switches;
    const double position_s =
        config.position_offset_s +
        V * static_cast<double>(k - config.start_chunk);
    sink.on_chunk({k, r, ladder.rate_bps(r), size, req_t, finish, dl,
                   last_tp, buffer, off_wait, position_s},
                  played);
    prev_rate = r;
  }

  // Downloads are done (or the session was cut); play out the buffer.
  if (!sum.started && buffer > 0.0) {
    sum.started = true;
    sum.join_s = t;
    playing = true;
  }
  if (playing || buffer > 0.0) {
    close_stall(t);
    const double drain = std::min(buffer, std::max(0.0, watch_limit - played));
    played += drain;
    t += drain;
    buffer -= drain;
  }
  close_stall(t);  // session ended while stalled: close at session end

  sum.played_s = played;
  sum.wall_s = t;
  obs::count(obs::Counter::kSessions);
  if (sum.abandoned) obs::count(obs::Counter::kSessionsAbandoned);
  obs::count(obs::Counter::kChunksDownloaded, obs_chunks);
  obs::count(obs::Counter::kOffPeriods, obs_offs);
  obs::count(obs::Counter::kRateSwitches, obs_switches);
  obs::count(obs::Counter::kCursorQueries, cursor.queries());
  obs::count(obs::Counter::kCursorRewinds, cursor.rewinds());
  sink.on_session_end(sum);
}

SessionResult simulate_session(const media::Video& video,
                               const net::CapacityTrace& trace,
                               abr::RateAdaptation& abr,
                               const PlayerConfig& config) {
  SessionResult res;
  // Reserve the exact worst case up front: one record per remaining chunk,
  // and at most one stall beginning per chunk in flight. Turns the ~9
  // doubling reallocations per vector the recorded bench mode used to pay
  // into one allocation each.
  const std::size_t chunk_bound =
      video.num_chunks() > config.start_chunk
          ? video.num_chunks() - config.start_chunk
          : 0;
  res.chunks.reserve(chunk_bound);
  res.rebuffers.reserve(chunk_bound + 1);
  RecordingSink sink(&res);
  simulate_session(video, trace, abr, config, sink);
  return res;
}

SessionResult simulate_session_with_seeks(const media::Video& video,
                                          const net::CapacityTrace& trace,
                                          abr::RateAdaptation& abr,
                                          const std::vector<Seek>& seeks,
                                          const PlayerConfig& config) {
  const double V = video.chunk_duration_s();
  SessionResult total;
  total.chunk_duration_s = V;

  double watched = 0.0;
  double wall = config.start_wall_s;
  std::size_t segment_start = config.start_chunk;
  bool first_segment = true;

  for (std::size_t i = 0; i <= seeks.size(); ++i) {
    const double segment_end = i < seeks.size()
                                   ? std::min(seeks[i].after_watched_s,
                                              config.watch_duration_s)
                                   : config.watch_duration_s;
    BBA_ASSERT(i == 0 || seeks[i - 1].after_watched_s <= segment_end ||
                   i == seeks.size(),
               "seeks must be ordered by after_watched_s");
    const double segment_watch = segment_end - watched;
    if (segment_watch > 0.0) {
      PlayerConfig sub = config;
      sub.start_chunk = segment_start;
      sub.start_wall_s = wall;
      sub.position_offset_s = watched;
      sub.watch_duration_s = segment_watch;
      SessionResult part = simulate_session(video, trace, abr, sub);
      // Chunks downloaded beyond the content actually played in this
      // segment (the buffer is discarded at the seek) must not count
      // toward the delivered-rate metrics: mark them as never played.
      const double segment_played_end = watched + part.played_s;
      for (auto& c : part.chunks) {
        if (c.position_s >= segment_played_end) {
          c.position_s = std::numeric_limits<double>::infinity();
        }
      }
      total.chunks.insert(total.chunks.end(), part.chunks.begin(),
                          part.chunks.end());
      total.rebuffers.insert(total.rebuffers.end(), part.rebuffers.begin(),
                             part.rebuffers.end());
      if (first_segment) {
        total.join_s = part.join_s;
        total.started = part.started;
        first_segment = false;
      }
      watched += part.played_s;
      wall = part.wall_s;
      total.abandoned = part.abandoned;
      if (part.abandoned) break;
    }
    if (i < seeks.size()) {
      const auto target = static_cast<std::size_t>(
          std::max(0.0, seeks[i].to_position_s) / V);
      segment_start = std::min(target, video.num_chunks() - 1);
    }
    if (watched >= config.watch_duration_s) break;
  }
  total.played_s = watched;
  total.wall_s = wall;
  return total;
}

}  // namespace bba::sim
