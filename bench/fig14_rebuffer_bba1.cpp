// Fig. 14: rebuffers per playhour with the VBR-aware BBA-1.
//
// Paper shape: BBA-1 comes close to the R_min-Always floor -- better than
// BBA-0 -- with a 20-28% improvement over Control at peak; the per-day
// difference between BBA-1 and the floor is not statistically significant
// in the quiet early-morning windows (Welch test, Sec. 5.3 footnote).
#include <cstdio>

#include "bench_common.hpp"
#include "stats/ttest.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 14: rebuffers/playhour with BBA-1",
                "BBA-1 nears the Rmin-Always floor; 20-28% below Control "
                "at peak.");

  const exp::AbTestResult result = bench::run_standard_groups(
      {"control", "rmin-always", "bba0", "bba1"});
  const auto metric = exp::rebuffers_per_hour_metric();

  std::printf("--- Fig. 14(a) ---\n");
  exp::print_absolute_by_window(result, metric);
  std::printf("\n--- Fig. 14(b) ---\n");
  exp::print_normalized_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig14_rebuffers");

  const double bba1_all =
      exp::mean_normalized(result, metric, "bba1", "control", false);
  const double bba1_peak =
      exp::mean_normalized(result, metric, "bba1", "control", true);
  const double bba0_all =
      exp::mean_normalized(result, metric, "bba0", "control", false);
  std::printf("\nBBA-1/Control: %.2f overall, %.2f at peak "
              "(BBA-0/Control: %.2f)\n",
              bba1_all, bba1_peak, bba0_all);

  // The paper's significance test: per-day rebuffer rates of BBA-1 vs the
  // floor in a quiet off-peak window.
  const std::size_t quiet_window = 5;  // 10-12 GMT
  const auto a = result.per_day(result.group_index("bba1"), quiet_window,
                                metric.get);
  const auto b = result.per_day(result.group_index("rmin-always"),
                                quiet_window, metric.get);
  const stats::TTestResult test = stats::welch_t_test(a, b);
  std::printf("off-peak window %s: BBA-1 vs floor Welch p-value = %.2f\n",
              exp::window_label(quiet_window).c_str(), test.p_value);

  bool ok = true;
  ok &= exp::shape_check(bba1_all >= 0.5 && bba1_all <= 0.92,
                         "BBA-1 rebuffers well below Control overall");
  ok &= exp::shape_check(bba1_peak < 1.0,
                         "the improvement holds at peak (paper: 20-28%)");
  // Known deviation (see EXPERIMENTS.md): in our population BBA-1 gives
  // back some of BBA-0's fixed-90s-reservoir safety in borderline-capacity
  // sessions, so it lands between BBA-0 and Control rather than below
  // BBA-0 as in the paper.
  ok &= exp::shape_check(bba1_all <= bba0_all + 0.20,
                         "BBA-1 stays within the floor-to-Control band, "
                         "near BBA-0");
  ok &= exp::shape_check(!test.significant(0.05),
                         "BBA-1 vs floor not statistically distinguishable "
                         "in a quiet off-peak window");
  return bench::verdict(ok);
}
