// Extending the library: a user-defined buffer-based algorithm.
//
//   $ ./build/examples/custom_rate_map
//
// Section 3 of the paper proves that ANY rate map that is continuous,
// strictly increasing, and pinned at (0, R_min) and (B_max, R_max) avoids
// unnecessary rebuffering and maximizes average rate. This example defines
// a custom *quadratic* rate map (gentler at low buffer than BBA-0's linear
// ramp), plugs it into Algorithm 1 through the RateAdaptation interface,
// and verifies the no-unnecessary-rebuffer property on a hostile trace
// whose capacity never drops below R_min.
#include <cmath>
#include <cstdio>

#include "abr/abr.hpp"
#include "core/bba0.hpp"
#include "core/map_families.hpp"
#include "core/rate_map.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

/// A buffer-based ABR with a quadratic ramp: f(B) grows slowly just above
/// the reservoir and steeply near the cushion's end. More conservative at
/// low buffer than BBA-0, same guarantees (continuous, increasing, pinned).
class QuadraticBba final : public abr::RateAdaptation {
 public:
  QuadraticBba(double reservoir_s, double cushion_s)
      : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {}

  std::size_t choose_rate(const abr::Observation& obs) override {
    const auto& ladder = obs.video->ladder();
    // Quadratic ramp mapped through the linear RateMap helper: evaluate the
    // quadratic buffer transform, then reuse Algorithm 1's barriers.
    const double b = obs.buffer_s;
    double transformed = b;
    if (b > reservoir_s_ && b < reservoir_s_ + cushion_s_) {
      const double frac = (b - reservoir_s_) / cushion_s_;
      transformed = reservoir_s_ + frac * frac * cushion_s_;
    }
    const core::RateMap map(reservoir_s_, cushion_s_, ladder.rmin_bps(),
                            ladder.rmax_bps());
    const std::size_t prev =
        obs.chunk_index == 0 ? ladder.min_index() : obs.prev_rate_index;
    return core::Bba0::algorithm1(map, ladder, prev, transformed);
  }

  std::string name() const override { return "quadratic-bba"; }

 private:
  double reservoir_s_;
  double cushion_s_;
};

}  // namespace

int main() {
  const media::EncodingLadder ladder = media::EncodingLadder::netflix_2013();
  const media::Video video =
      media::make_cbr_video("cbr-title", ladder, 1200, 4.0);

  // Hostile but fair: capacity whipsaws between 20x R_min and 1.2x R_min.
  // Since C(t) > R_min always, Sec. 3.1 says no rebuffer is necessary.
  const net::CapacityTrace trace = net::make_square_trace(
      20.0 * ladder.rmin_bps(), 1.2 * ladder.rmin_bps(), 60.0, 120.0);

  QuadraticBba custom(90.0, 126.0);
  core::Bba0 stock;
  // The same idea is available first-class: shaped map families with a
  // design-criteria checker (core/map_families.hpp).
  core::ShapedBba quadratic(core::MapShape::kQuadratic);
  core::ShapedBba logarithmic(core::MapShape::kLogarithmic);

  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(60);

  for (abr::RateAdaptation* abr :
       {static_cast<abr::RateAdaptation*>(&custom),
        static_cast<abr::RateAdaptation*>(&stock),
        static_cast<abr::RateAdaptation*>(&quadratic),
        static_cast<abr::RateAdaptation*>(&logarithmic)}) {
    const sim::SessionMetrics m = sim::compute_metrics(
        sim::simulate_session(video, trace, *abr, player));
    std::printf("%-24s rebuffers=%lld avg=%4.0f kb/s switches/hr=%.1f\n",
                abr->name().c_str(), m.rebuffer_count,
                util::to_kbps(m.avg_rate_bps), m.switches_per_hour);
  }
  std::printf(
      "\nEvery map avoids rebuffering entirely (capacity never drops below\n"
      "R_min, Sec. 3's theorem); the maps differ only in how aggressively\n"
      "they climb the cushion.\n");
  return 0;
}
