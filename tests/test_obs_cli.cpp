// Tests for the bba_obs CLI's shared pieces (tools/): the strict
// bba.timeline.v1 artifact parser, the skipped-cell accounting in
// normalized_samples (bba_obs diff used to silently thin sparse grids),
// the strict numeric flag validators that replaced atoi/atof, and the
// bba.alerts.v1 parser behind `bba_obs health`.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "alerts_artifact.hpp"
#include "cli_parse.hpp"
#include "obs_artifact.hpp"
#include "obs/monitor.hpp"
#include "obs/timeline.hpp"
#include "sim/metrics.hpp"

namespace bba::tools {
namespace {

TEST(CliParse, U64AndCounts) {
  std::uint64_t u = 0;
  EXPECT_TRUE(parse_u64("42", &u));
  EXPECT_EQ(u, 42u);
  EXPECT_TRUE(parse_u64("0", &u));
  for (const char* bad : {"", "-5", "+5", "4x", "x4", " 4", "4 "}) {
    EXPECT_FALSE(parse_u64(bad, &u)) << bad;
  }

  std::size_t n = 0;
  EXPECT_TRUE(parse_count("7", &n));
  EXPECT_EQ(n, 7u);
  EXPECT_FALSE(parse_count("0", &n));
  EXPECT_FALSE(parse_count("-1", &n));
  EXPECT_TRUE(parse_count0("0", &n));
  EXPECT_EQ(n, 0u);
}

TEST(CliParse, UnitOpenRejectsGarbageAndBounds) {
  double v = 0.0;
  EXPECT_TRUE(parse_unit_open("0.95", &v));
  EXPECT_DOUBLE_EQ(v, 0.95);
  EXPECT_TRUE(parse_unit_open("1e-3", &v));
  // atof would have accepted every one of these as 0.0 or worse.
  for (const char* bad :
       {"pony", "", "0", "1", "1.0", "0.0", "-0.5", "2", "0.5x", "nan"}) {
    EXPECT_FALSE(parse_unit_open(bad, &v)) << bad;
  }
}

/// The real writer/reader contract: an artifact rendered by
/// obs::TimelineAggregator::to_json() parses back field-for-field.
TEST(ObsArtifact, ParsesAggregatorOutput) {
  obs::TimelineAggregator agg;
  agg.begin_run(77, {"control", "bba2"}, 2, 12);
  sim::SessionMetrics m;
  m.play_s = 600.0;
  m.join_s = 1.5;
  m.rebuffer_count = 3;
  m.rebuffer_s = 4.5;
  m.avg_rate_bps = 3.0e6;
  m.avg_buffer_s = 20.0;
  m.switch_count = 2;
  agg.record(0, 5, 0, m);
  agg.record(0, 5, 1, m);
  m.abandoned = true;
  m.rebuffer_count = 0;
  agg.record(1, 11, 1, m);

  Artifact a;
  std::string error;
  ASSERT_TRUE(parse_artifact(agg.to_json(), "mem", &a, &error)) << error;
  EXPECT_EQ(a.seed, 77u);
  EXPECT_EQ(a.days, 2u);
  EXPECT_EQ(a.windows, 12u);
  ASSERT_EQ(a.groups.size(), 2u);
  EXPECT_EQ(a.groups[0], "control");
  EXPECT_EQ(a.groups[1], "bba2");
  ASSERT_EQ(a.cells.size(), 3u);
  EXPECT_EQ(a.cells[0].day, 0u);
  EXPECT_EQ(a.cells[0].window, 5u);
  EXPECT_EQ(a.cells[0].sessions, 1u);
  EXPECT_EQ(a.cells[0].rebuffers, 3u);
  EXPECT_EQ(a.cells[0].play_micro, 600000000u);
  ASSERT_EQ(a.sketches.size(), 2 * kNumSketchMetrics);
  // Group 1 recorded two sessions; its rate sketch holds both.
  EXPECT_EQ(a.sketches[1 * kNumSketchMetrics + 0].count(), 2u);

  const std::vector<CellData> totals = a.group_totals();
  EXPECT_EQ(totals[0].sessions, 1u);
  EXPECT_EQ(totals[1].sessions, 2u);
  EXPECT_EQ(totals[1].abandoned, 1u);
  const std::vector<CellData> by_window = a.merged_by_window();
  ASSERT_EQ(by_window.size(), 12u * 2u);
  EXPECT_EQ(by_window[5 * 2 + 0].sessions, 1u);
  EXPECT_EQ(by_window[11 * 2 + 1].sessions, 1u);
}

TEST(ObsArtifact, RejectsMalformedInput) {
  obs::TimelineAggregator agg;
  agg.begin_run(1, {"a"}, 1, 12);
  const std::string good = agg.to_json();

  Artifact a;
  std::string error;
  // Wrong schema tag.
  std::string wrong = good;
  wrong.replace(wrong.find("v1"), 2, "v9");
  EXPECT_FALSE(parse_artifact(wrong, "p", &a, &error));
  EXPECT_NE(error.find("p: "), std::string::npos);

  // Truncation anywhere fails loudly.
  a = Artifact{};
  EXPECT_FALSE(
      parse_artifact(good.substr(0, good.size() / 2), "p", &a, &error));

  // Cell with out-of-range indices.
  a = Artifact{};
  const std::string bad_cell =
      "{\"schema\":\"bba.timeline.v1\",\"seed\":1,\"days\":1,"
      "\"windows_per_day\":12,\"groups\":[\"a\"],\"cells\":["
      "{\"day\":0,\"window\":12,\"group\":0,\"sessions\":1,\"abandoned\":0,"
      "\"rebuffers\":0,\"fault_stalls\":0,\"switches\":0,\"play_micro\":1,"
      "\"rebuffer_micro\":0,\"join_micro\":0,\"rate_play_kbit\":0}],"
      "\"sketches\":[]}";
  EXPECT_FALSE(parse_artifact(bad_cell, "p", &a, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);

  // Sketch whose buckets do not sum to its declared count.
  a = Artifact{};
  const std::string bad_sketch =
      "{\"schema\":\"bba.timeline.v1\",\"seed\":1,\"days\":1,"
      "\"windows_per_day\":12,\"groups\":[\"a\"],\"cells\":[],"
      "\"sketches\":[{\"group\":0,\"metric\":\"rate_bps\",\"zero\":0,"
      "\"count\":5,\"buckets\":[[100,2]]}]}";
  EXPECT_FALSE(parse_artifact(bad_sketch, "p", &a, &error));
  EXPECT_NE(error.find("sum"), std::string::npos);
}

/// bba_obs diff's skip accounting: cells with no sample on either side
/// are counted, not silently dropped.
TEST(ObsArtifact, NormalizedSamplesCountSkippedCells) {
  Artifact a;
  a.days = 1;
  a.windows = 4;
  a.groups = {"base", "treat"};

  auto cell = [](std::size_t w, std::size_t g, unsigned long long sessions,
                 unsigned long long rebuffers,
                 unsigned long long play_micro) {
    CellData c;
    c.window = w;
    c.group = g;
    c.sessions = sessions;
    c.rebuffers = rebuffers;
    c.play_micro = play_micro;
    return c;
  };
  const unsigned long long hour = 3600ull * 1000000ull;
  // Window 0: defined on both sides -> one sample (ratio 2.0).
  a.cells.push_back(cell(0, 0, 10, 4, hour));
  a.cells.push_back(cell(0, 1, 10, 8, hour));
  // Window 1: baseline side has zero sessions -> skipped.
  a.cells.push_back(cell(1, 1, 10, 1, hour));
  // Window 2: baseline defined but rebuffer rate is 0 -> skipped
  // (undefined ratio).
  a.cells.push_back(cell(2, 0, 10, 0, hour));
  a.cells.push_back(cell(2, 1, 10, 1, hour));
  // Window 3: absent on both sides -> skipped.

  std::size_t skipped = 0;
  const std::vector<double> samples = normalized_samples(
      a, 1, 0, &CellData::rebuf_per_hour, &skipped);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_DOUBLE_EQ(samples[0], 2.0);
  EXPECT_EQ(skipped, 3u);

  // The out-param is optional, as the summary path uses it.
  EXPECT_EQ(normalized_samples(a, 1, 0, &CellData::rebuf_per_hour).size(),
            1u);
}

/// bba_obs timeline/summary print a one-line notice (and exit 0) instead
/// of fabricated zero tables when an artifact holds no sessions; the
/// predicate they branch on is "every group total has zero sessions".
TEST(ObsArtifact, EmptyAggregatorRunYieldsZeroSessionTotals) {
  obs::TimelineAggregator agg;
  agg.begin_run(5, {"control", "bba2"}, 1, 12);
  Artifact a;
  std::string error;
  ASSERT_TRUE(parse_artifact(agg.to_json(), "mem", &a, &error)) << error;
  EXPECT_TRUE(a.cells.empty());
  for (const CellData& total : a.group_totals()) {
    EXPECT_EQ(total.sessions, 0u);
  }
  // The per-group sketches exist but are empty: the summary path must
  // omit quantiles rather than print garbage.
  ASSERT_EQ(a.sketches.size(), 2 * kNumSketchMetrics);
  for (std::size_t i = 0; i < a.sketches.size(); ++i) {
    EXPECT_EQ(a.sketches[i].count(), 0u) << i;
  }
}

/// The real writer/reader contract for alerts: what HealthMonitor
/// renders is exactly what `bba_obs health` parses back.
TEST(AlertsArtifact, ParsesMonitorOutput) {
  obs::MonitorSpec spec;
  std::string error;
  ASSERT_TRUE(
      obs::MonitorSpec::parse("warmup=2,ewma_k=1.5,cusum_h=1", &spec, &error))
      << error;
  obs::HealthMonitor mon(spec);
  mon.begin_run(13, {"control", "bba2"}, 1, 4);
  sim::SessionMetrics m;
  m.play_s = 100.0;
  m.avg_rate_bps = 2.0e6;
  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t g = 0; g < 2; ++g) {
      m.join_s = (w == 3 && g == 1) ? 80.0 : 1.0;
      mon.record(0, w, g, 0, m);
    }
  }
  mon.finalize();

  AlertsArtifact a;
  ASSERT_TRUE(parse_alerts(mon.render(), "mem", &a, &error)) << error;
  EXPECT_EQ(a.seed, 13u);
  EXPECT_EQ(a.days, 1u);
  EXPECT_EQ(a.windows, 4u);
  ASSERT_EQ(a.groups.size(), 2u);
  EXPECT_EQ(a.groups[1], "bba2");
  EXPECT_EQ(a.warmup, 2u);
  EXPECT_DOUBLE_EQ(a.ewma_k, 1.5);
  EXPECT_DOUBLE_EQ(a.cusum_h, 1.0);
  EXPECT_TRUE(a.capture);
  ASSERT_FALSE(a.alerts.empty());
  EXPECT_EQ(a.summary_alerts, a.alerts.size());
  EXPECT_EQ(a.summary_cells, 8u);
  // Only group bba2's last window deviated.
  for (const AlertData& alert : a.alerts) {
    EXPECT_EQ(alert.group, 1u);
    EXPECT_EQ(alert.day, 0u);
    EXPECT_EQ(alert.window, 3u);
    EXPECT_EQ(alert.metric, "join_s");
    EXPECT_TRUE(alert.kind == "ewma" || alert.kind == "cusum") << alert.kind;
    if (alert.kind == "ewma") {
      EXPECT_EQ(alert.dir, "up");
      EXPECT_GT(alert.value, alert.center + alert.band);
    }
  }
}

/// A quiet fleet renders header + summary only; `bba_obs health` prints
/// "healthy" off the empty alert list rather than inventing a table.
TEST(AlertsArtifact, EmptyAlertListParsesClean) {
  obs::HealthMonitor mon{obs::MonitorSpec{}};
  mon.begin_run(1, {"control"}, 1, 2);
  sim::SessionMetrics m;
  m.play_s = 100.0;
  mon.record(0, 0, 0, 0, m);
  mon.record(0, 1, 0, 0, m);
  mon.finalize();

  AlertsArtifact a;
  std::string error;
  ASSERT_TRUE(parse_alerts(mon.render(), "mem", &a, &error)) << error;
  EXPECT_TRUE(a.alerts.empty());
  EXPECT_EQ(a.summary_alerts, 0u);
  EXPECT_EQ(a.summary_cells, 2u);
}

TEST(AlertsArtifact, RejectsMalformedInput) {
  obs::MonitorSpec spec;
  std::string error;
  ASSERT_TRUE(
      obs::MonitorSpec::parse("warmup=2,ewma_k=1.5,cusum_h=1", &spec, &error))
      << error;
  obs::HealthMonitor mon(spec);
  mon.begin_run(13, {"a"}, 1, 4);
  sim::SessionMetrics m;
  m.play_s = 100.0;
  for (std::size_t w = 0; w < 4; ++w) {
    m.join_s = w == 3 ? 80.0 : 1.0;
    mon.record(0, w, 0, 0, m);
  }
  mon.finalize();
  const std::string good = mon.render();
  ASSERT_NE(good.find("\"ev\":\"alert\""), std::string::npos);

  AlertsArtifact a;
  // Wrong schema tag.
  std::string wrong = good;
  wrong.replace(wrong.find("v1"), 2, "v9");
  EXPECT_FALSE(parse_alerts(wrong, "p", &a, &error));
  EXPECT_NE(error.find("p: "), std::string::npos);

  // Truncation (a killed writer) loses the summary trailer.
  a = AlertsArtifact{};
  EXPECT_FALSE(parse_alerts(good.substr(0, good.rfind('{')), "p", &a,
                            &error));
  EXPECT_NE(error.find("summary"), std::string::npos);

  // Tampered seq breaks fold order.
  a = AlertsArtifact{};
  wrong = good;
  wrong.replace(wrong.find("\"seq\":0"), 7, "\"seq\":3");
  EXPECT_FALSE(parse_alerts(wrong, "p", &a, &error));
  EXPECT_NE(error.find("fold order"), std::string::npos);

  // group_name must agree with the group index.
  a = AlertsArtifact{};
  wrong = good;
  wrong.replace(wrong.find("\"group_name\":\"a\""), 16,
                "\"group_name\":\"b\"");
  EXPECT_FALSE(parse_alerts(wrong, "p", &a, &error));
  EXPECT_NE(error.find("group_name"), std::string::npos);

  // Trailing data after the trailer (two artifacts concatenated).
  a = AlertsArtifact{};
  EXPECT_FALSE(parse_alerts(good + good, "p", &a, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);

  // Summary alert count must match the lines actually present.
  a = AlertsArtifact{};
  wrong = good;
  const std::size_t alerts_pos = wrong.rfind(",\"alerts\":");
  ASSERT_NE(alerts_pos, std::string::npos);
  wrong.replace(alerts_pos, 11, ",\"alerts\":9");
  EXPECT_FALSE(parse_alerts(wrong, "p", &a, &error));
  EXPECT_NE(error.find("count"), std::string::npos);
}

}  // namespace
}  // namespace bba::tools
