#include "core/bba0.hpp"

#include "util/assert.hpp"

namespace bba::core {

Bba0::Bba0(Bba0Config cfg) : cfg_(cfg) {
  BBA_ASSERT(cfg_.reservoir_s >= 0.0 && cfg_.cushion_s > 0.0,
             "invalid BBA-0 geometry");
}

std::size_t Bba0::algorithm1(const RateMap& map,
                             const media::EncodingLadder& ladder,
                             std::size_t prev_index, double buffer_s) {
  BBA_ASSERT(prev_index < ladder.size(), "prev rate index out of range");

  // Rate+ / Rate- : the neighbouring discrete rates (Algorithm 1).
  const std::size_t rate_plus = ladder.up(prev_index);
  const std::size_t rate_minus = ladder.down(prev_index);

  if (buffer_s <= map.reservoir_s()) {
    return ladder.min_index();
  }
  if (buffer_s >= map.upper_reservoir_start_s()) {
    return ladder.max_index();
  }
  const double f = map.rate_at_bps(buffer_s);
  if (f >= ladder.rate_bps(rate_plus)) {
    return ladder.highest_below(f);  // max{Ri : Ri < f(B)}
  }
  if (f <= ladder.rate_bps(rate_minus)) {
    return ladder.lowest_above(f);   // min{Ri : Ri > f(B)}
  }
  return prev_index;
}

std::size_t Bba0::choose_rate(const abr::Observation& obs) {
  BBA_ASSERT(obs.video != nullptr, "observation must carry the video");
  const auto& ladder = obs.video->ladder();
  const RateMap map(cfg_.reservoir_s, cfg_.cushion_s, ladder.rmin_bps(),
                    ladder.rmax_bps());
  const std::size_t prev = obs.chunk_index == 0
                               ? std::min(cfg_.start_index, ladder.max_index())
                               : std::min(obs.prev_rate_index,
                                          ladder.max_index());
  return algorithm1(map, ladder, prev, obs.buffer_s);
}

}  // namespace bba::core
