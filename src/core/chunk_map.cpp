#include "core/chunk_map.hpp"

#include "util/assert.hpp"

namespace bba::core {

ChunkMap::ChunkMap(double reservoir_s, double upper_knee_s,
                   double chunk_min_bits, double chunk_max_bits)
    : reservoir_s_(reservoir_s),
      upper_knee_s_(upper_knee_s),
      chunk_min_bits_(chunk_min_bits),
      chunk_max_bits_(chunk_max_bits) {
  BBA_ASSERT(reservoir_s_ >= 0.0, "reservoir must be >= 0");
  BBA_ASSERT(upper_knee_s_ > reservoir_s_,
             "upper knee must exceed the reservoir");
  BBA_ASSERT(chunk_min_bits_ > 0.0 && chunk_max_bits_ > chunk_min_bits_,
             "require 0 < chunk_min < chunk_max");
}

double ChunkMap::max_chunk_bits(double buffer_s) const {
  if (buffer_s <= reservoir_s_) return chunk_min_bits_;
  if (buffer_s >= upper_knee_s_) return chunk_max_bits_;
  const double frac = (buffer_s - reservoir_s_) / cushion_s();
  return chunk_min_bits_ + frac * (chunk_max_bits_ - chunk_min_bits_);
}

}  // namespace bba::core
