file(REMOVE_RECURSE
  "CMakeFiles/bba_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/bba_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/bba_stats.dir/descriptive.cpp.o"
  "CMakeFiles/bba_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/bba_stats.dir/histogram.cpp.o"
  "CMakeFiles/bba_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/bba_stats.dir/ttest.cpp.o"
  "CMakeFiles/bba_stats.dir/ttest.cpp.o.d"
  "libbba_stats.a"
  "libbba_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bba_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
