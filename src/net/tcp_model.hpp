// First-order TCP slow-start model for chunk downloads.
//
// The fluid trace model assumes a download instantly runs at C(t). Real
// chunk fetches ride TCP: after an idle period the congestion window
// restarts (RFC 2861), so the first RTTs of every chunk deliver far below
// the path rate and SMALL chunks achieve a much lower measured throughput
// than the link supports. This is the measurement trap behind the ON-OFF
// "downward spiral" of Huang et al., "Confused, Timid, and Unstable"
// (IMC'12), which the paper's Sec. 8 revisits: a capacity-chasing client
// at a full buffer alternates ON-OFF, keeps measuring slow-start-degraded
// throughput, and talks itself down the ladder; a buffer-based client
// requests R_max whenever the buffer is full and never enters the spiral.
//
// Model: the deliverable rate in RTT round i is min(w0 * 2^i, C(t)) with
// the window halved toward w0 after `idle_reset_s` of idle; once the
// window reaches the path rate the remainder is capacity-limited (exact
// trace integration).
#pragma once

#include "net/capacity_trace.hpp"
#include "net/trace_cursor.hpp"

namespace bba::net {

/// Slow-start parameters.
struct TcpModelConfig {
  /// Path round-trip time.
  double rtt_s = 0.08;

  /// Initial congestion window in bits (IW10 x 1500-byte segments).
  double init_window_bits = 10 * 12000.0;

  /// Idle gap after which the window resets to the initial value
  /// (RFC 2861 congestion window validation). Idle below this keeps the
  /// connection warm (no slow start).
  double idle_reset_s = 0.5;
};

/// Computes chunk completion times under the slow-start model.
class TcpDownloadModel {
 public:
  explicit TcpDownloadModel(TcpModelConfig cfg = {});

  /// Finish time of a `bits` download starting at `start_s` over `trace`,
  /// with `idle_s` of connection idle before the request (use +infinity
  /// for the first request of a session).
  double finish_time_s(const CapacityTrace& trace, double start_s,
                       double bits, double idle_s) const;

  /// Cursor variant for hot loops: bit-identical to the trace overload
  /// (the slow-start probes and the final integration are monotone in
  /// time, so the cursor's hint advances instead of re-searching).
  double finish_time_s(TraceCursor& cursor, double start_s, double bits,
                       double idle_s) const;

  const TcpModelConfig& config() const { return cfg_; }

 private:
  TcpModelConfig cfg_;
};

}  // namespace bba::net
