# Empty dependencies file for ablation_control_design.
# This may be replaced when dependencies are built.
