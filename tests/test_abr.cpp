// Tests for bba::abr: baselines and the Control (Fig. 3) algorithm.
#include <gtest/gtest.h>

#include "abr/abr.hpp"
#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "media/video.hpp"
#include "net/estimators.hpp"
#include "util/units.hpp"

namespace bba::abr {
namespace {

using util::kbps;
using util::mbps;

const media::Video& test_video() {
  static const media::Video video = media::make_cbr_video(
      "t", media::EncodingLadder::netflix_2013(), 100, 4.0);
  return video;
}

Observation make_obs(std::size_t chunk, double buffer_s,
                     std::size_t prev_rate, double last_tput_bps,
                     double last_dl_s = 1.0) {
  Observation obs;
  obs.chunk_index = chunk;
  obs.buffer_s = buffer_s;
  obs.buffer_max_s = 240.0;
  obs.now_s = 4.0 * static_cast<double>(chunk);
  obs.prev_rate_index = prev_rate;
  obs.last_throughput_bps = last_tput_bps;
  obs.last_download_s = last_tput_bps > 0.0 ? last_dl_s : 0.0;
  obs.delta_buffer_s = 0.0;
  obs.playing = chunk > 0;
  obs.video = &test_video();
  return obs;
}

TEST(Baselines, RMinAlwaysPicksIndexZero) {
  RMinAlways abr;
  for (double buffer : {0.0, 100.0, 240.0}) {
    EXPECT_EQ(abr.choose_rate(make_obs(5, buffer, 7, mbps(50))), 0u);
  }
}

TEST(Baselines, RMaxAlwaysPicksTop) {
  RMaxAlways abr;
  const std::size_t top = test_video().ladder().max_index();
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), top);
  EXPECT_EQ(abr.choose_rate(make_obs(5, 3.0, 0, kbps(100))), top);
}

TEST(Baselines, FixedRateClampsToLadder) {
  FixedRate abr(99);
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)),
            test_video().ladder().max_index());
  FixedRate abr3(3);
  EXPECT_EQ(abr3.choose_rate(make_obs(0, 0.0, 0, 0.0)), 3u);
}

TEST(Baselines, ThroughputAbrChasesEstimate) {
  ThroughputAbr abr(std::make_unique<net::LastSampleEstimator>(),
                    /*safety=*/1.0, /*start_index=*/0);
  // No sample yet: start index.
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), 0u);
  // 3.1 Mb/s sample -> highest rate <= 3.1 Mb/s = 3000 kb/s (index 7).
  EXPECT_EQ(abr.choose_rate(make_obs(1, 4.0, 0, kbps(3100))), 7u);
  // 400 kb/s sample -> 375 kb/s.
  EXPECT_EQ(abr.choose_rate(make_obs(2, 4.0, 7, kbps(400))), 1u);
}

TEST(Baselines, ThroughputAbrSafetyDiscount) {
  ThroughputAbr abr(std::make_unique<net::LastSampleEstimator>(),
                    /*safety=*/0.5, /*start_index=*/0);
  // 0.5 * 3100 = 1550 -> 1050 kb/s (index 4).
  EXPECT_EQ(abr.choose_rate(make_obs(1, 4.0, 0, kbps(3100))), 4u);
}

TEST(Baselines, ThroughputAbrResetForgetsSamples) {
  ThroughputAbr abr(std::make_unique<net::LastSampleEstimator>(), 1.0, 2);
  (void)abr.choose_rate(make_obs(1, 4.0, 0, mbps(5)));
  abr.reset();
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), 2u);
}

TEST(Control, AdjustmentIsConservativeAtEmptyBuffer) {
  ControlConfig cfg;
  ControlAbr abr(cfg);
  EXPECT_DOUBLE_EQ(abr.adjustment(0.0), cfg.f_at_empty);
  EXPECT_DOUBLE_EQ(abr.adjustment(cfg.knee_s), cfg.f_at_knee);
  EXPECT_DOUBLE_EQ(abr.adjustment(240.0), cfg.f_at_knee);
  // Linear in between.
  EXPECT_NEAR(abr.adjustment(cfg.knee_s / 2),
              (cfg.f_at_empty + cfg.f_at_knee) / 2, 1e-12);
}

TEST(Control, StartIndexBeforeFirstSample) {
  ControlConfig cfg;
  cfg.start_index = 2;
  ControlAbr abr(cfg);
  EXPECT_EQ(abr.choose_rate(make_obs(0, 0.0, 0, 0.0)), 2u);
}

TEST(Control, PicksHighestRateUnderAdjustedEstimate) {
  ControlConfig cfg;
  cfg.f_at_empty = 1.0;
  cfg.f_at_knee = 1.0;
  cfg.last_sample_cap = 1e9;
  cfg.up_margin = 1.0;
  ControlAbr abr(cfg);
  // One 3.1 Mb/s sample with a full buffer: target = 3.1 Mb/s -> 3000.
  EXPECT_EQ(abr.choose_rate(make_obs(1, 240.0, 0, kbps(3100))), 7u);
}

TEST(Control, BufferAdjustmentScalesTarget) {
  ControlConfig cfg;
  cfg.f_at_empty = 0.5;
  cfg.f_at_knee = 1.0;
  cfg.knee_s = 60.0;
  cfg.last_sample_cap = 1e9;
  cfg.up_margin = 1.0;
  ControlAbr low(cfg);
  ControlAbr high(cfg);
  // Same estimate, different buffers: the low buffer picks a lower rate.
  const std::size_t r_low = low.choose_rate(make_obs(1, 0.0, 0, mbps(2)));
  const std::size_t r_high = high.choose_rate(make_obs(1, 240.0, 0, mbps(2)));
  EXPECT_LT(r_low, r_high);
}

TEST(Control, DownSwitchHysteresisHolds) {
  ControlConfig cfg;
  cfg.f_at_empty = 1.0;
  cfg.f_at_knee = 1.0;
  cfg.down_threshold = 0.85;
  cfg.last_sample_cap = 1e9;
  cfg.estimator_window = 1;
  cfg.up_margin = 1.0;
  ControlAbr abr(cfg);
  // Establish 3000 kb/s (index 7).
  EXPECT_EQ(abr.choose_rate(make_obs(1, 240.0, 0, kbps(3100))), 7u);
  // Estimate dips to 2700: within 0.85 * 3000 = 2550 -> hold.
  EXPECT_EQ(abr.choose_rate(make_obs(2, 240.0, 7, kbps(2700))), 7u);
  // Estimate collapses to 1000 -> down to 750 (index 3).
  EXPECT_EQ(abr.choose_rate(make_obs(3, 240.0, 7, kbps(1000))), 3u);
}

TEST(Control, UpMarginSuppressesBoundaryFlap) {
  ControlConfig cfg;
  cfg.f_at_empty = 1.0;
  cfg.f_at_knee = 1.0;
  cfg.up_margin = 1.15;
  cfg.last_sample_cap = 1e9;
  cfg.estimator_window = 1;
  ControlAbr abr(cfg);
  // From 2350 (index 6): an estimate of 3050 barely clears 3000 but not
  // the 15% margin -> hold.
  (void)abr.choose_rate(make_obs(1, 240.0, 0, kbps(2350)));
  EXPECT_EQ(abr.choose_rate(make_obs(2, 240.0, 6, kbps(3050))), 6u);
  // A 4.0 Mb/s estimate clears 3000 * 1.15 -> up.
  EXPECT_EQ(abr.choose_rate(make_obs(3, 240.0, 6, kbps(4000))), 7u);
}

TEST(Control, FreshSampleCapTempersStaleMean) {
  ControlConfig cfg;
  cfg.f_at_empty = 1.0;
  cfg.f_at_knee = 1.0;
  cfg.estimator_window = 8;
  cfg.last_sample_cap = 1.5;
  cfg.up_margin = 1.0;
  ControlAbr abr(cfg);
  // Eight fast samples...
  std::size_t rate = 0;
  for (std::size_t k = 1; k <= 8; ++k) {
    rate = abr.choose_rate(make_obs(k, 240.0, rate, mbps(8)));
  }
  EXPECT_EQ(rate, test_video().ladder().max_index());
  // ...then one 400 kb/s chunk: the mean is still ~7 Mb/s, but the cap
  // pins the estimate to 600 kb/s -> immediate deep down-switch.
  const std::size_t after =
      abr.choose_rate(make_obs(9, 240.0, rate, kbps(400)));
  EXPECT_LE(after, 2u);  // at most 560 kb/s
}

TEST(Control, ResetClearsEstimator) {
  ControlAbr abr;
  (void)abr.choose_rate(make_obs(1, 100.0, 0, mbps(5)));
  EXPECT_GT(abr.estimate_bps(), 0.0);
  abr.reset();
  EXPECT_DOUBLE_EQ(abr.estimate_bps(), 0.0);
}

TEST(Control, NameAndEstimateAccessors) {
  ControlAbr abr;
  EXPECT_EQ(abr.name(), "control");
  EXPECT_DOUBLE_EQ(abr.estimate_bps(), 0.0);
}

}  // namespace
}  // namespace bba::abr
