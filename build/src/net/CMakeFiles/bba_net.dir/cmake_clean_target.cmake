file(REMOVE_RECURSE
  "libbba_net.a"
)
