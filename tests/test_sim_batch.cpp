// Differential tests: the batched SoA session kernel
// (sim/batch_player.hpp) against the scalar simulate_session +
// StreamingMetricsSink oracle. Everything is compared at the byte level --
// SessionMetrics fields via memcmp and the obs registry via full snapshot
// equality (counters, histogram buckets, fixed-point sums) -- because the
// kernel's contract is bit-identity, not closeness.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/bba2.hpp"
#include "exp/abtest.hpp"
#include "exp/population.hpp"
#include "exp/session_key.hpp"
#include "exp/workload.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/fault_inject.hpp"
#include "net/trace_gen.hpp"
#include "obs/metrics.hpp"
#include "sim/batch_player.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "sim/session_sink.hpp"

namespace {

using namespace bba;

void expect_identical(const sim::SessionMetrics& a,
                      const sim::SessionMetrics& b, std::size_t lane) {
  auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  EXPECT_TRUE(same(a.play_s, b.play_s)) << "lane " << lane;
  EXPECT_TRUE(same(a.join_s, b.join_s)) << "lane " << lane;
  EXPECT_EQ(a.rebuffer_count, b.rebuffer_count) << "lane " << lane;
  EXPECT_TRUE(same(a.rebuffer_s, b.rebuffer_s)) << "lane " << lane;
  EXPECT_TRUE(same(a.rebuffers_per_hour, b.rebuffers_per_hour))
      << "lane " << lane;
  EXPECT_EQ(a.fault_stall_count, b.fault_stall_count) << "lane " << lane;
  EXPECT_TRUE(same(a.avg_rate_bps, b.avg_rate_bps)) << "lane " << lane;
  EXPECT_TRUE(same(a.startup_rate_bps, b.startup_rate_bps))
      << "lane " << lane;
  EXPECT_TRUE(same(a.steady_rate_bps, b.steady_rate_bps)) << "lane " << lane;
  EXPECT_EQ(a.has_steady, b.has_steady) << "lane " << lane;
  EXPECT_TRUE(same(a.steady_play_s, b.steady_play_s)) << "lane " << lane;
  EXPECT_EQ(a.switch_count, b.switch_count) << "lane " << lane;
  EXPECT_TRUE(same(a.switches_per_hour, b.switches_per_hour))
      << "lane " << lane;
  EXPECT_TRUE(same(a.avg_buffer_s, b.avg_buffer_s)) << "lane " << lane;
  EXPECT_EQ(a.abandoned, b.abandoned) << "lane " << lane;
}

void expect_snapshots_equal(const obs::MetricsSnapshot& a,
                            const obs::MetricsSnapshot& b) {
  for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
    EXPECT_EQ(a.counters[c], b.counters[c])
        << obs::counter_name(static_cast<obs::Counter>(c));
  }
  for (std::size_t h = 0; h < obs::kNumHists; ++h) {
    const auto& ha = a.hists[h];
    const auto& hb = b.hists[h];
    EXPECT_EQ(ha.count, hb.count) << obs::hist_name(static_cast<obs::Hist>(h));
    EXPECT_EQ(ha.sum, hb.sum) << obs::hist_name(static_cast<obs::Hist>(h));
    for (int i = 0; i < obs::HistSlot::kBuckets; ++i) {
      EXPECT_EQ(ha.buckets[i], hb.buckets[i])
          << obs::hist_name(static_cast<obs::Hist>(h)) << " bucket " << i;
    }
  }
}

// One session's worth of inputs, resolved from a SessionKey exactly the way
// the A/B harness hot path does.
struct Case {
  exp::SessionKey key;
  exp::UserEnvironment env;
  exp::SessionSpec spec;
  net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
  bool materialized = false;
};

struct Fixture {
  exp::Population population;
  media::VideoLibrary library = media::VideoLibrary::standard(11);
  exp::WorkloadConfig workload;
  sim::PlayerConfig player;
  std::uint64_t seed = 2014;

  explicit Fixture(exp::PopulationConfig pop_cfg = {})
      : population(std::move(pop_cfg)) {}

  // Materializes every case (environment, spec, and -- for sessions with
  // outages or when `force_trace` -- the full capacity trace).
  std::vector<Case> cases(std::size_t n, bool force_trace = false) {
    std::vector<Case> out(n);
    net::TraceScratch scratch;
    for (std::size_t i = 0; i < n; ++i) {
      Case& c = out[i];
      c.key = exp::SessionKey{seed, 0, i % exp::kWindowsPerDay,
                              i / exp::kWindowsPerDay};
      c.env = population.environment_for(c.key);
      c.spec = exp::session_for(library, workload, c.key);
      if (c.env.has_outages || force_trace) {
        population.trace_for_into(c.env, c.key, scratch, c.trace);
        c.materialized = true;
      }
    }
    return out;
  }

  sim::PlayerConfig config_for(const Case& c) const {
    sim::PlayerConfig cfg = player;
    cfg.watch_duration_s = c.spec.watch_duration_s;
    return cfg;
  }

  // Scalar oracle: the exact harness hot path (materialized trace,
  // streaming sink, reused ABR).
  sim::SessionMetrics scalar(const Case& c, core::Bba2& abr,
                             sim::StreamingMetricsSink& sink,
                             net::TraceScratch& scratch,
                             net::CapacityTrace& trace) {
    population.trace_for_into(c.env, c.key, scratch, trace);
    sim::simulate_session(library.at(c.spec.video_index), trace, abr,
                          config_for(c), sink);
    return sink.metrics();
  }

  // Builds lanes for `cases`: sessions with a materialized trace become
  // trace lanes, the rest stream lazily from the environment's Markov
  // config (the batch dispatch's plan for outage-free sessions).
  std::vector<sim::BatchLane> lanes(std::vector<Case>& cases,
                                    core::Bba2& abr,
                                    std::vector<sim::SessionMetrics>& out) {
    out.assign(cases.size(), sim::SessionMetrics{});
    std::vector<sim::BatchLane> ls(cases.size());
    for (std::size_t i = 0; i < cases.size(); ++i) {
      sim::BatchLane& l = ls[i];
      l.video = &library.at(cases[i].spec.video_index);
      l.abr = &abr;
      l.config = config_for(cases[i]);
      if (cases[i].materialized) {
        l.trace = &cases[i].trace;
      } else {
        l.stream = &cases[i].env.trace;
        l.stream_rng = exp::session_rng(cases[i].key, exp::StreamClass::kTrace);
      }
      l.out = &out[i];
    }
    return ls;
  }
};

constexpr std::size_t kSweep = 180;  // 15 sessions in each of 12 windows

TEST(SimBatch, MixedStreamAndTraceLanesMatchScalar) {
  Fixture fx;
  std::vector<Case> cases = fx.cases(kSweep);
  core::Bba2 abr;
  std::vector<sim::SessionMetrics> got;
  std::vector<sim::BatchLane> lanes = fx.lanes(cases, abr, got);
  sim::BatchScratch scratch;
  sim::simulate_session_batch(lanes, scratch);

  core::Bba2 oracle_abr;
  sim::StreamingMetricsSink sink;
  net::TraceScratch ts;
  net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
  std::size_t streamed = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const sim::SessionMetrics want =
        fx.scalar(cases[i], oracle_abr, sink, ts, trace);
    expect_identical(got[i], want, i);
    if (lanes[i].stream != nullptr) ++streamed;
  }
  // The sweep must actually exercise both lane kinds.
  EXPECT_GT(streamed, kSweep / 2);
  EXPECT_LT(streamed, kSweep);
}

TEST(SimBatch, AllOutageLanesMatchScalar) {
  exp::PopulationConfig pop;
  pop.outage_session_fraction = 1.0;  // every trace carries outage windows
  Fixture fx(pop);
  std::vector<Case> cases = fx.cases(60);
  core::Bba2 abr;
  std::vector<sim::SessionMetrics> got;
  std::vector<sim::BatchLane> lanes = fx.lanes(cases, abr, got);
  for (const sim::BatchLane& l : lanes) {
    ASSERT_NE(l.trace, nullptr);  // all materialized
  }
  sim::BatchScratch scratch;
  sim::simulate_session_batch(lanes, scratch);

  core::Bba2 oracle_abr;
  sim::StreamingMetricsSink sink;
  net::TraceScratch ts;
  net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expect_identical(got[i], fx.scalar(cases[i], oracle_abr, sink, ts, trace),
                     i);
  }
}

TEST(SimBatch, ObsRegistryDeltasMatchScalar) {
  // Memo accounting (kReservoirMemoHits / kReservoirMemoBuilds) depends on
  // the ChunkTable memo temperature, so each side gets its own
  // identically-seeded library copy and a cold registry.
  Fixture fx_batch;
  Fixture fx_scalar;
  std::vector<Case> bc = fx_batch.cases(kSweep);
  std::vector<Case> sc = fx_scalar.cases(kSweep);

  obs::MetricsRegistry reg_batch(1);
  {
    obs::SlotBinding bind(&reg_batch, 0);
    core::Bba2 abr;
    std::vector<sim::SessionMetrics> got;
    std::vector<sim::BatchLane> lanes = fx_batch.lanes(bc, abr, got);
    sim::BatchScratch scratch;
    sim::simulate_session_batch(lanes, scratch);
  }

  obs::MetricsRegistry reg_scalar(1);
  {
    obs::SlotBinding bind(&reg_scalar, 0);
    core::Bba2 abr;
    sim::StreamingMetricsSink sink;
    net::TraceScratch ts;
    net::CapacityTrace trace = net::CapacityTrace::constant(1.0);
    for (const Case& c : sc) fx_scalar.scalar(c, abr, sink, ts, trace);
  }

  expect_snapshots_equal(reg_batch.snapshot(), reg_scalar.snapshot());
}

TEST(SimBatch, BatchSplitInvariance) {
  // Lane results must not depend on how sessions are grouped into batch
  // calls: one call over all lanes vs. uneven chunks (batch of 1, a
  // non-dividing remainder) through one reused scratch.
  Fixture fx;
  std::vector<Case> cases = fx.cases(53);  // deliberately awkward count
  core::Bba2 abr;

  std::vector<sim::SessionMetrics> whole;
  {
    std::vector<sim::BatchLane> lanes = fx.lanes(cases, abr, whole);
    sim::BatchScratch scratch;
    sim::simulate_session_batch(lanes, scratch);
  }

  std::vector<sim::SessionMetrics> split;
  {
    std::vector<sim::BatchLane> lanes = fx.lanes(cases, abr, split);
    sim::BatchScratch scratch;
    std::span<sim::BatchLane> rest(lanes);
    const std::size_t sizes[] = {1, 7, 16, 2, 27};  // sums to 53
    for (std::size_t n : sizes) {
      sim::simulate_session_batch(rest.subspan(0, n), scratch);
      rest = rest.subspan(n);
    }
    ASSERT_TRUE(rest.empty());
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    expect_identical(whole[i], split[i], i);
  }
}

TEST(SimBatch, SharedStreamKeyLanesMatchPrivateStreams) {
  // Common-random-numbers groups: lanes replaying the same kTrace substream
  // share one lazily generated stream via stream_key. Results must equal
  // the same lanes run with private streams.
  Fixture fx;
  std::vector<Case> cases = fx.cases(40);
  core::Bba2 abr;

  std::vector<sim::SessionMetrics> keyed;
  std::vector<sim::SessionMetrics> twin_out(cases.size());
  std::vector<std::size_t> streamed;
  {
    std::vector<sim::BatchLane> lanes = fx.lanes(cases, abr, keyed);
    // Duplicate every streamed lane: two lanes per key sharing the stream.
    std::vector<sim::BatchLane> doubled;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i].stream == nullptr) continue;
      streamed.push_back(i);
      lanes[i].stream_key = i + 1;
      doubled.push_back(lanes[i]);
      sim::BatchLane twin = lanes[i];
      twin.out = &twin_out[i];
      doubled.push_back(twin);
    }
    ASSERT_FALSE(doubled.empty());
    sim::BatchScratch scratch;
    sim::simulate_session_batch(doubled, scratch);
  }

  std::vector<sim::SessionMetrics> priv;
  {
    std::vector<sim::BatchLane> lanes = fx.lanes(cases, abr, priv);
    sim::BatchScratch scratch;
    sim::simulate_session_batch(lanes, scratch);
  }
  for (std::size_t i : streamed) {
    expect_identical(keyed[i], priv[i], i);
    expect_identical(twin_out[i], priv[i], i);
  }
}

TEST(SimBatch, IneligibleLanesFallBackIdentically) {
  // Give-up timers, seeks (start_chunk), TCP model, disabled cursor: all
  // route through the scalar fallback inside the batch call and must equal
  // a direct scalar run with the same config.
  Fixture fx;
  std::vector<Case> cases = fx.cases(24, /*force_trace=*/true);
  core::Bba2 abr;
  std::vector<sim::SessionMetrics> got;
  std::vector<sim::BatchLane> lanes = fx.lanes(cases, abr, got);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    sim::PlayerConfig& cfg = lanes[i].config;
    switch (i % 4) {
      case 0: cfg.give_up_stall_s = 30.0; break;
      case 1: cfg.start_chunk = 3; break;
      case 2: cfg.tcp = net::TcpModelConfig{}; break;
      case 3: cfg.use_trace_cursor = false; break;
    }
  }
  sim::BatchScratch scratch;
  sim::simulate_session_batch(lanes, scratch);

  core::Bba2 oracle_abr;
  sim::StreamingMetricsSink sink;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    sim::simulate_session(fx.library.at(cases[i].spec.video_index),
                          cases[i].trace, oracle_abr, lanes[i].config, sink);
    expect_identical(got[i], sink.metrics(), i);
  }
}

TEST(SimBatch, EligibilityRejectsUnsupportedConfigs) {
  Fixture fx;
  std::vector<Case> cases = fx.cases(1, /*force_trace=*/true);
  core::Bba2 abr;
  abr::BatchDecisionProfile profile;
  ASSERT_TRUE(abr.batch_profile(&profile));
  const media::Video& video = fx.library.at(cases[0].spec.video_index);
  const net::CapacityTrace* trace = &cases[0].trace;
  sim::PlayerConfig base = fx.config_for(cases[0]);
  ASSERT_TRUE(sim::batch_lane_eligible(profile, base, video, trace));

  auto with = [&](auto mut) {
    sim::PlayerConfig cfg = base;
    mut(cfg);
    return sim::batch_lane_eligible(profile, cfg, video, trace);
  };
  EXPECT_FALSE(with([](sim::PlayerConfig& c) { c.give_up_stall_s = 60.0; }));
  EXPECT_FALSE(with([](sim::PlayerConfig& c) { c.max_wall_s = 1e6; }));
  EXPECT_FALSE(with([](sim::PlayerConfig& c) { c.start_chunk = 1; }));
  EXPECT_FALSE(with([](sim::PlayerConfig& c) { c.start_wall_s = 5.0; }));
  EXPECT_FALSE(
      with([](sim::PlayerConfig& c) { c.position_offset_s = 40.0; }));
  EXPECT_FALSE(
      with([](sim::PlayerConfig& c) { c.tcp = net::TcpModelConfig{}; }));
  EXPECT_FALSE(
      with([](sim::PlayerConfig& c) { c.use_trace_cursor = false; }));
  EXPECT_FALSE(with([](sim::PlayerConfig& c) { c.watch_duration_s = 0.0; }));
  static const std::vector<net::InjectedFault> kNoFaults;
  EXPECT_FALSE(with([](sim::PlayerConfig& c) { c.faults = &kNoFaults; }));

  // Non-looping traces are out (the kernel's wrap math assumes loops).
  net::CapacityTrace non_looping(
      std::vector<net::CapacityTrace::Segment>{{1000.0, 1e6}},
      /*loop=*/false);
  EXPECT_FALSE(sim::batch_lane_eligible(profile, base, video, &non_looping));

  // A profile without memoized window sums is out.
  abr::BatchDecisionProfile no_memo = profile;
  no_memo.cache_window_sums = false;
  EXPECT_FALSE(sim::batch_lane_eligible(no_memo, base, video, trace));
}

// --- Harness-level differentials ------------------------------------------

exp::AbTestConfig harness_config(bool batch, std::size_t threads) {
  exp::AbTestConfig cfg;
  cfg.sessions_per_window = 6;
  cfg.days = 1;
  cfg.seed = 77;
  cfg.threads = threads;
  cfg.batch_sessions = batch;
  return cfg;
}

std::vector<exp::Group> harness_groups() {
  std::vector<exp::Group> groups;
  groups.push_back({"control", exp::make_control_factory()});
  groups.push_back({"bba1", exp::make_bba1_factory()});
  groups.push_back({"bba2", exp::make_bba2_factory()});
  return groups;
}

void expect_results_bitwise_equal(const exp::AbTestResult& a,
                                  const exp::AbTestResult& b) {
  ASSERT_EQ(a.group_names, b.group_names);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t g = 0; g < a.cells.size(); ++g) {
    ASSERT_EQ(a.cells[g].size(), b.cells[g].size());
    for (std::size_t d = 0; d < a.cells[g].size(); ++d) {
      ASSERT_EQ(a.cells[g][d].size(), b.cells[g][d].size());
      for (std::size_t w = 0; w < a.cells[g][d].size(); ++w) {
        EXPECT_EQ(std::memcmp(&a.cells[g][d][w], &b.cells[g][d][w],
                              sizeof(exp::WindowMetrics)),
                  0)
            << "group " << g << " day " << d << " window " << w;
      }
    }
  }
}

TEST(SimBatch, HarnessBatchOnOffBitIdentical) {
  const media::VideoLibrary library = media::VideoLibrary::standard(5);
  const exp::AbTestResult off =
      exp::run_ab_test(harness_groups(), library, harness_config(false, 1));
  const exp::AbTestResult on1 =
      exp::run_ab_test(harness_groups(), library, harness_config(true, 1));
  const exp::AbTestResult on4 =
      exp::run_ab_test(harness_groups(), library, harness_config(true, 4));
  expect_results_bitwise_equal(off, on1);
  expect_results_bitwise_equal(off, on4);
}

TEST(SimBatch, HarnessBatchWithFaultsBitIdentical) {
  // A non-empty fault plan routes every key to the scalar path; the knob
  // must not change a single byte either way.
  const media::VideoLibrary library = media::VideoLibrary::standard(5);
  exp::AbTestConfig off = harness_config(false, 1);
  exp::AbTestConfig on = harness_config(true, 1);
  std::string err;
  ASSERT_TRUE(net::parse_fault_plan("outage:every=400,dur=20..30",
                                    &off.population.faults, &err))
      << err;
  on.population.faults = off.population.faults;
  expect_results_bitwise_equal(
      exp::run_ab_test(harness_groups(), library, off),
      exp::run_ab_test(harness_groups(), library, on));
}

TEST(SimBatch, DerivedAbrRefusesProfile) {
  // The exact-dynamic-type guard: a subclass that might override behaviour
  // must not inherit the base class's kernel profile.
  struct TweakedBba2 : core::Bba2 {
    using core::Bba2::Bba2;
  };
  TweakedBba2 derived;
  abr::BatchDecisionProfile profile;
  EXPECT_FALSE(derived.batch_profile(&profile));
}

}  // namespace
