// Fig. 7: rebuffers per playhour through the day -- Control vs
// R_min-Always vs BBA-0 (absolute, 7a) and normalized to Control per
// two-hour window (7b).
//
// Paper shape: R_min-Always is the empirical floor (the Control-to-floor
// gap suggests 20-30% of rebuffers are unnecessary); BBA-0 sits 10-30%
// below Control, tracking the floor closely off-peak and lagging it at
// peak.
#include "bench_common.hpp"

int main() {
  using namespace bba;
  bench::banner("Fig. 7: rebuffers/playhour, Control vs Rmin-Always vs "
                "BBA-0",
                "BBA-0 cuts rebuffers 10-30% below Control; Rmin-Always is "
                "the floor.");

  const exp::AbTestResult result =
      bench::run_standard_groups({"control", "rmin-always", "bba0"});
  const auto metric = exp::rebuffers_per_hour_metric();

  std::printf("--- Fig. 7(a) ---\n");
  exp::print_absolute_by_window(result, metric);
  std::printf("\n--- Fig. 7(b) ---\n");
  exp::print_normalized_by_window(result, metric, "control");

  bench::dump_figure(result, metric, "fig07_rebuffers");

  const double bba0_all =
      exp::mean_normalized(result, metric, "bba0", "control", false);
  const double bba0_peak =
      exp::mean_normalized(result, metric, "bba0", "control", true);
  const double floor_all =
      exp::mean_normalized(result, metric, "rmin-always", "control", false);
  std::printf("\nBBA-0/Control: %.2f overall, %.2f at peak; floor/Control: "
              "%.2f\n",
              bba0_all, bba0_peak, floor_all);
  const stats::BootstrapCi ci =
      exp::normalized_ci(result, metric, "bba0", "control");
  std::printf("bootstrap 95%% CI for BBA-0/Control: [%.2f, %.2f]\n", ci.lo,
              ci.hi);

  bool ok = true;
  ok &= exp::shape_check(bba0_all >= 0.55 && bba0_all <= 0.95,
                         "BBA-0 rebuffers 10-30%+ below Control overall");
  ok &= exp::shape_check(bba0_peak < 1.0,
                         "BBA-0 beats Control during peak hours");
  ok &= exp::shape_check(floor_all >= 0.5 && floor_all <= 0.9,
                         "Control-to-floor gap: 20-30% of Control's "
                         "rebuffers look unnecessary (paper Sec. 4.2)");
  ok &= exp::shape_check(floor_all <= bba0_all + 0.05,
                         "Rmin-Always approximates the lower bound");
  ok &= exp::shape_check(ci.hi < 1.0,
                         "the rebuffer reduction is statistically solid "
                         "(bootstrap 95% CI entirely below 1)");
  return bench::verdict(ok);
}
