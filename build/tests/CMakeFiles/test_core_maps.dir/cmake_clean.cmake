file(REMOVE_RECURSE
  "CMakeFiles/test_core_maps.dir/test_core_maps.cpp.o"
  "CMakeFiles/test_core_maps.dir/test_core_maps.cpp.o.d"
  "test_core_maps"
  "test_core_maps.pdb"
  "test_core_maps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
