// Batched session kernel: advance a lane-batch of sessions with all hot
// state in structure-of-arrays / register-resident form, bit-identical to
// the scalar simulate_session + StreamingMetricsSink pipeline.
//
// One lane is one session. The kernel fuses the three layers the scalar
// path crosses per chunk -- ABR decision (virtual choose_rate), trace
// integration (TraceCursor), metrics fold (SessionSink virtual calls) --
// into a single loop whose state lives in locals, reading decisions from a
// chunk-major DecisionTable row and capacity from raw prefix arrays
// (net/trace_stream.hpp). Lanes backed by a MarkovTraceConfig generate
// their trace lazily: only the prefix the session actually consumes is ever
// produced, and lanes sharing a `stream_key` (common-random-numbers groups
// replaying one kTrace substream) generate that prefix once.
//
// Contracts (enforced by tests/test_sim_batch.cpp and the hot-path bench):
//  - SessionMetrics bytes identical to the scalar pipeline for every lane;
//  - obs registry deltas identical (per-chunk histograms, session counters,
//    cursor query/rewind tallies, reservoir memo-hit accounting);
//  - zero steady-state heap allocation per session;
//  - lanes the kernel cannot express (TCP model, faults, seeks, give-up
//    timers, non-looping traces, ABRs without a BatchDecisionProfile)
//    transparently fall back to the scalar oracle inside the batch call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "abr/abr.hpp"
#include "media/decision_table.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/trace_gen.hpp"
#include "net/trace_stream.hpp"
#include "sim/player.hpp"
#include "sim/session_sink.hpp"
#include "util/rng.hpp"

namespace bba::sim {

/// One session of a batch. Exactly one trace source must be set: `trace`
/// (materialized, must loop) or `stream` (lazy Markov generation from
/// `stream_rng`). `abr` provides the decision profile -- and drives the
/// scalar fallback when the lane is ineligible, so it must be a valid
/// single-session instance either way.
struct BatchLane {
  const media::Video* video = nullptr;
  abr::RateAdaptation* abr = nullptr;
  PlayerConfig config;

  const net::CapacityTrace* trace = nullptr;
  const net::MarkovTraceConfig* stream = nullptr;
  util::Rng stream_rng{0};
  /// Lanes with equal nonzero key share one TraceStream within a batch
  /// call; the caller guarantees they carry identical (stream, stream_rng).
  /// 0 = private stream.
  std::uint64_t stream_key = 0;

  SessionMetrics* out = nullptr;
};

/// Pending played-weight fold entry (mirrors StreamingMetricsSink's ring).
struct BatchPendingChunk {
  double position_s = 0.0;
  double rate_bps = 0.0;
};

/// Per-thread (per executor slot) scratch. All steady-state storage lives
/// here: the decision-table cache, the trace streams, the pending ring,
/// and the scalar-fallback trace/sink. Reuse across batches is what makes
/// steady-state sessions allocation-free.
struct BatchScratch {
  media::DecisionTableCache tables;

  net::TraceStream private_stream;  ///< reused by stream_key == 0 lanes
  std::vector<std::unique_ptr<net::TraceStream>> streams;
  std::vector<std::uint64_t> stream_keys;  ///< active keys, per batch call

  std::vector<BatchPendingChunk> ring;
  std::size_t ring_mask = 0;

  net::TraceScratch trace_scratch;
  net::CapacityTrace fallback_trace = net::CapacityTrace::constant(1.0);
  StreamingMetricsSink sink;
};

/// True when the kernel can run this (profile, config, video, trace)
/// combination bit-identically; false routes the lane to the scalar
/// fallback. Exposed for tests and for callers that want to pre-classify.
bool batch_lane_eligible(const abr::BatchDecisionProfile& profile,
                         const PlayerConfig& config,
                         const media::Video& video,
                         const net::CapacityTrace* trace);

/// Runs every lane to completion (depth-first per lane -- measured faster
/// than cross-lane interleaving on current hardware; see docs/perf.md) and
/// writes each lane's SessionMetrics to *out. Bit-identical to running
/// simulate_session per lane with a StreamingMetricsSink, including every
/// obs registry event.
void simulate_session_batch(std::span<BatchLane> lanes,
                            BatchScratch& scratch);

}  // namespace bba::sim
