// Trace transforms: "what if" tooling over capacity traces.
//
// Replaying a measured trace through the simulator invites the obvious
// follow-ups -- what if the link were twice as fast, what if the first
// minute were cut, what if two measurements were stitched together. These
// pure functions build the modified trace without touching the original.
#pragma once

#include "net/capacity_trace.hpp"

namespace bba::net {

/// Multiplies every segment's rate by `factor` (> 0).
CapacityTrace scale_rate(const CapacityTrace& trace, double factor);

/// Multiplies every segment's duration by `factor` (> 0): slows down or
/// speeds up the *dynamics* without changing the rate distribution.
CapacityTrace scale_time(const CapacityTrace& trace, double factor);

/// Clamps every segment's rate into [floor_bps, ceil_bps]. Exact-zero
/// segments are outages, not slow links: they are preserved as-is even
/// when floor_bps > 0, so a "what if the link never dropped below X"
/// experiment does not silently erase the outages from the trace.
CapacityTrace clamp_rate(const CapacityTrace& trace, double floor_bps,
                         double ceil_bps);

/// Drops the first `skip_s` seconds of one cycle; the result starts at the
/// trace's state at `skip_s`. Requires 0 <= skip_s < cycle duration.
CapacityTrace skip_start(const CapacityTrace& trace, double skip_s);

/// Concatenates one cycle of `first` with one cycle of `second` (the
/// result loops over the combined sequence if `loop`).
CapacityTrace concat(const CapacityTrace& first, const CapacityTrace& second,
                     bool loop = true);

}  // namespace bba::net
