#!/usr/bin/env python3
"""Compare two bench JSON files and flag sessions/sec regressions.

Both micro_parallel_scaling and micro_session_hot_path emit a single JSON
object with a ``results`` array whose rows carry ``sessions_per_sec`` plus
identifying fields (``mode`` and/or ``threads``). This tool matches rows
between a baseline file and a candidate file by those identifying fields
and fails when any matched row regressed by more than the threshold.

A row key present in only one of the two files is an error: it means the
bench schema changed (a mode was added, removed, or renamed) and the
committed baseline no longer covers the candidate. Regenerate and commit
the baseline, or pass --allow-missing to compare the intersection only.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
    tools/bench_compare.py BASELINE.json CANDIDATE.json --list

Exit status: 0 when every row matched and none regressed beyond the
threshold, 1 otherwise (regression, unmatched row without --allow-missing,
or no rows in common).
"""

import argparse
import json
import sys


def row_key(row):
    """Identity of a result row: every field except the measurements."""
    return tuple(
        (k, row[k])
        for k in sorted(row)
        if k not in ("seconds", "sessions_per_sec", "allocs_per_session",
                     "speedup")
    )


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("results")
    if not isinstance(rows, list):
        sys.exit(f"{path}: no 'results' array")
    return {row_key(r): r for r in rows if "sessions_per_sec" in r}


def label_of(key):
    return ", ".join(f"{k}={v}" for k, v in key)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="maximum tolerated fractional slowdown (default 0.10)")
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="tolerate row keys present in only one file (compare the "
             "intersection instead of failing)")
    parser.add_argument(
        "--list", action="store_true",
        help="print every compared row key (and each file's unmatched "
             "keys) without judging regressions")
    args = parser.parse_args()

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)
    matched = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if args.list:
        for key in matched:
            print(f"both: {label_of(key)}")
        for key in only_base:
            print(f"baseline only: {label_of(key)}")
        for key in only_cand:
            print(f"candidate only: {label_of(key)}")
        print(f"{len(matched)} matched, {len(only_base)} baseline-only, "
              f"{len(only_cand)} candidate-only")
        return 0

    if not matched:
        sys.exit("no result rows in common between the two files")

    regressions = 0
    for key in matched:
        before = base[key]["sessions_per_sec"]
        after = cand[key]["sessions_per_sec"]
        delta = (after - before) / before if before > 0 else 0.0
        status = "ok"
        if delta < -args.threshold:
            status = "REGRESSION"
            regressions += 1
        print(f"{label_of(key)}: {before:.1f} -> {after:.1f} sessions/sec "
              f"({delta:+.1%}) {status}")

    unmatched_fatal = 0
    for key, side in [(k, "baseline") for k in only_base] + \
                     [(k, "candidate") for k in only_cand]:
        if args.allow_missing:
            print(f"{label_of(key)}: only in {side}, skipped "
                  "(--allow-missing)")
        else:
            print(f"{label_of(key)}: only in {side} -- the bench schema "
                  "changed; regenerate the committed baseline or pass "
                  "--allow-missing")
            unmatched_fatal += 1

    if regressions:
        print(f"FAIL: {regressions} row(s) regressed more than "
              f"{args.threshold:.0%}")
        return 1
    if unmatched_fatal:
        print(f"FAIL: {unmatched_fatal} row key(s) present in only one file")
        return 1
    print(f"PASS: no row regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
