#include "obs/trace.hpp"

#include <cinttypes>

#include <unistd.h>

#include "exp/session_key.hpp"
#include "obs/trace_jsonl.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace bba::obs {

TraceCollector::TraceCollector(TraceConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.path.empty()) {
    // Resume mode reopens the interrupted run's file without truncating;
    // resume_from() then cuts it back to the checkpointed offset.
    file_ = std::fopen(cfg_.path.c_str(), cfg_.resume ? "r+b" : "wb");
    ok_ = file_ != nullptr;
  } else {
    ok_ = true;
  }
}

TraceCollector::~TraceCollector() {
  if (file_ != nullptr) std::fclose(file_);
}

std::unique_ptr<SessionTraceSink> TraceCollector::make_sink() const {
  return std::make_unique<SessionTraceSink>();
}

bool TraceCollector::sampled(std::uint64_t seed, std::uint64_t day,
                             std::uint64_t window,
                             std::uint64_t session) const {
  if (cfg_.sample == 0) return false;
  if (cfg_.sample == 1) return true;
  // Reserved substream class: a pure function of the session coordinates,
  // so the sampled set is invariant under thread count, session order, and
  // draw-count changes in any simulation phase.
  util::Rng rng = exp::session_rng(
      exp::SessionKey{seed, day, window, session},
      exp::StreamClass::kTraceSample);
  return rng.next_u64() % cfg_.sample == 0;
}

void TraceCollector::note_session(bool anomalous) {
  ++sessions_written_;
  if (anomalous) ++anomalies_written_;
}

void TraceCollector::note_io_error(const char* op) {
  ok_ = false;
  ++write_errors_;
  if (!io_warned_) {
    io_warned_ = true;
    std::fprintf(stderr,
                 "bba: trace %s failed for '%s' (disk full?); trace file is "
                 "incomplete\n",
                 op, cfg_.path.c_str());
  }
}

void TraceCollector::write(const std::string& lines) {
  bytes_written_ += lines.size();
  if (file_ != nullptr && !lines.empty()) {
    if (std::fwrite(lines.data(), 1, lines.size(), file_) != lines.size()) {
      note_io_error("write");
    }
  }
}

void TraceCollector::flush() {
  if (file_ != nullptr && std::fflush(file_) != 0) note_io_error("flush");
}

TraceResumeState TraceCollector::resume_state() {
  flush();
  TraceResumeState st;
  st.format = format_name();
  st.sample = cfg_.sample;
  st.anomaly_rebuffer_s = cfg_.anomaly_rebuffer_s;
  st.sessions_written = sessions_written_;
  st.anomalies_written = anomalies_written_;
  st.bytes_written = bytes_written_;
  st.write_errors = write_errors_;
  if (file_ != nullptr) {
    const long pos = std::ftell(file_);
    st.file_size = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
  } else {
    // No file (discard mode): the byte tally stands in for the offset so
    // a resumed discard-mode collector keeps counting from the same point.
    st.file_size = bytes_written_;
  }
  return st;
}

bool TraceCollector::resume_from(const TraceResumeState& st,
                                 std::string* error) {
  if (st.format != format_name()) {
    *error = "checkpoint trace format is '" + st.format + "', this run is '" +
             format_name() + "'";
    return false;
  }
  if (st.sample != cfg_.sample) {
    *error = "checkpoint trace sample does not match --trace-sample";
    return false;
  }
  if (st.anomaly_rebuffer_s != cfg_.anomaly_rebuffer_s) {
    *error = "checkpoint trace anomaly threshold does not match this run";
    return false;
  }
  if (file_ != nullptr) {
    std::fseek(file_, 0, SEEK_END);
    const long end = std::ftell(file_);
    if (end < 0 || static_cast<std::uint64_t>(end) < st.file_size) {
      *error = "trace file " + cfg_.path +
               " is shorter than the checkpoint recorded";
      return false;
    }
    // Drop everything the interrupted process wrote past its checkpoint;
    // those sessions are re-simulated and re-written bit-identically.
    if (ftruncate(fileno(file_), static_cast<off_t>(st.file_size)) != 0) {
      *error = "could not truncate " + cfg_.path + " to the checkpoint";
      return false;
    }
    std::fseek(file_, 0, SEEK_END);
  }
  sessions_written_ = st.sessions_written;
  anomalies_written_ = st.anomalies_written;
  bytes_written_ = st.bytes_written;
  write_errors_ = st.write_errors;
  return true;
}

std::string TraceCollector::stats_json() const {
  std::string out;
  jsonl::append_fmt(
      out,
      "\"trace\":{\"format\":\"%s\",\"sample\":%" PRIu64
      ",\"sessions_written\":%" PRIu64 ",\"anomalies_written\":%" PRIu64
      ",\"bytes_written\":%" PRIu64 ",\"write_errors\":%" PRIu64 "}",
      format_name(), cfg_.sample, sessions_written_, anomalies_written_,
      bytes_written_, write_errors_);
  return out;
}

void SessionTraceSink::begin(const TraceConfig& cfg, std::uint64_t seed,
                             std::uint64_t day, std::uint64_t window,
                             std::uint64_t session, std::string_view group,
                             bool sampled) {
  cfg_ = &cfg;
  seed_ = seed;
  day_ = day;
  window_ = window;
  session_ = session;
  group_.assign(group.data(), group.size());
  sampled_ = sampled;
  capture_ = sampled || cfg.anomalies_enabled();
  emit_ = false;
  anomalous_ = false;
  ended_ = false;
  chunks_.clear();
  played_at_chunk_.clear();
  rebuffers_.clear();
  summary_ = sim::SessionSummary{};
  rebuffer_total_s_ = 0.0;
  faults_ = nullptr;
  fault_cycle_s_ = 0.0;
  fault_loops_ = false;
  alert_marker_.clear();
}

void SessionTraceSink::set_faults(
    const std::vector<net::InjectedFault>* faults, double trace_cycle_s,
    bool trace_loops) {
  faults_ = faults;
  fault_cycle_s_ = trace_cycle_s;
  fault_loops_ = trace_loops;
}

void SessionTraceSink::set_alert(std::string_view marker_line) {
  alert_marker_.assign(marker_line.data(), marker_line.size());
  // Evidence capture must buffer and emit regardless of the sampling
  // decision -- that is the whole point of the alert replay.
  capture_ = true;
}

void SessionTraceSink::on_session_start(double chunk_duration_s) {
  summary_.chunk_duration_s = chunk_duration_s;
}

void SessionTraceSink::on_chunk(const sim::ChunkRecord& chunk,
                                double played_s) {
  if (!capture_) return;
  chunks_.push_back(chunk);
  played_at_chunk_.push_back(played_s);
}

void SessionTraceSink::on_rebuffer(const sim::RebufferEvent& event) {
  rebuffer_total_s_ += event.duration_s;
  if (!capture_) return;
  rebuffers_.push_back(event);
}

void SessionTraceSink::on_session_end(const sim::SessionSummary& summary) {
  summary_ = summary;
  ended_ = true;
  if (cfg_ == nullptr) return;
  anomalous_ = rebuffer_total_s_ >= cfg_->anomaly_rebuffer_s ||
               (cfg_->capture_abandoned && summary.abandoned);
  emit_ = capture_ && (sampled_ || anomalous_ || !alert_marker_.empty());
}

namespace {

/// walk_session_lines visitor emitting the JSONL event lines.
struct JsonlVisitor {
  std::string& o;

  void off(std::uint64_t k, double start_s, double wait_s) {
    jsonl::append_off_line(o, k, jsonl::Num::of(start_s),
                           jsonl::Num::of(wait_s));
  }
  void rate_switch(std::uint64_t k, double t_s, std::uint64_t from,
                   std::uint64_t to) {
    jsonl::append_switch_line(o, k, jsonl::Num::of(t_s), from, to);
  }
  void stall(std::uint64_t k, double start_s, double dur_s, int fault_flag) {
    jsonl::append_stall_line(o, k, jsonl::Num::of(start_s),
                             jsonl::Num::of(dur_s), fault_flag);
  }
  void chunk(const sim::ChunkRecord& c, double played_s) {
    jsonl::ChunkLine line;
    line.k = c.index;
    line.rate = c.rate_index;
    line.rate_bps = jsonl::Num::of(c.rate_bps);
    line.bits = jsonl::Num::of(c.size_bits);
    line.req_s = jsonl::Num::of(c.request_s);
    line.fin_s = jsonl::Num::of(c.finish_s);
    line.dl_s = jsonl::Num::of(c.download_s);
    line.tput_bps = jsonl::Num::of(c.throughput_bps);
    line.buf_s = jsonl::Num::of(c.buffer_after_s);
    line.pos_s = jsonl::Num::of(c.position_s);
    line.played_s = jsonl::Num::of(played_s);
    jsonl::append_chunk_line(o, line);
  }
};

}  // namespace

bool SessionTraceSink::finish(std::string* out) const {
  BBA_ASSERT(ended_, "finish() requires a completed session");
  if (!emit_ || out == nullptr) return emit_;
  std::string& o = *out;

  jsonl::SessionHeader h;
  h.seed = seed_;
  h.day = day_;
  h.window = window_;
  h.session = session_;
  h.group = group_;
  h.sampled = sampled_;
  h.anomaly = anomalous_;
  h.v_s = summary_.chunk_duration_s;
  h.started = summary_.started;
  h.abandoned = summary_.abandoned;
  h.join_s = summary_.join_s;
  h.played_s = summary_.played_s;
  h.wall_s = summary_.wall_s;
  h.rebuffer_count = rebuffers_.size();
  h.rebuffer_s = rebuffer_total_s_;
  h.chunks = chunks_.size();
  if (faults_ != nullptr) {
    h.has_faults = true;
    h.fault_count = faults_->size();
    h.trace_cycle_s = jsonl::Num::of(fault_cycle_s_);
    h.trace_loops = fault_loops_;
  }
  jsonl::append_session_line(o, h);

  // The alert marker rides directly after the header so a reader knows
  // this session is monitor evidence before its event lines start.
  if (!alert_marker_.empty()) o += alert_marker_;

  if (faults_ != nullptr) {
    // The injected faults, in first-cycle trace time, directly after the
    // header so a reader sees the fault overlay before the chunk timeline.
    for (const net::InjectedFault& f : *faults_) {
      jsonl::append_fault_line(o, net::fault_kind_name(f.kind),
                               jsonl::Num::of(f.start_s),
                               jsonl::Num::of(f.duration_s),
                               jsonl::Num::of(f.factor));
    }
  }

  jsonl::walk_session_lines(chunks_, played_at_chunk_, rebuffers_,
                            /*with_fault_flags=*/faults_ != nullptr,
                            JsonlVisitor{o});
  return true;
}

}  // namespace bba::obs
