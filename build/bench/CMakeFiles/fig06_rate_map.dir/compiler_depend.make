# Empty compiler generated dependencies file for fig06_rate_map.
# This may be replaced when dependencies are built.
