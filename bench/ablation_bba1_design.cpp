// Ablation: which of BBA-1's design ingredients matter?
//
// DESIGN.md calls out three choices in the VBR-aware algorithm: the dynamic
// reservoir (vs BBA-0's fixed 90 s), the reservoir's lower clamp, and the
// Sec. 7.1 outage-protection accrual. This bench streams the identical
// session set with each variant and reports the rebuffer/rate/switch
// trade-off each ingredient buys.
#include <memory>

#include "bench_common.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace bba;

exp::AbrFactory bba1_variant(double min_reservoir_s, bool outage,
                             double accrual_s) {
  return [=] {
    core::Bba1Config cfg;
    cfg.reservoir.min_s = min_reservoir_s;
    cfg.outage_protection = outage;
    cfg.outage_accrual_s = accrual_s;
    return std::make_unique<core::Bba1>(cfg);
  };
}

}  // namespace

int main() {
  bench::banner("Ablation: BBA-1 design choices",
                "Contribution of the dynamic reservoir clamp and outage "
                "protection to the rebuffer/rate trade-off.");

  std::vector<exp::Group> groups = {
      {"bba0(fixed-90s)", exp::make_bba0_factory()},
      {"bba1(min8,no-outage)", bba1_variant(8.0, false, 0.0)},
      {"bba1(min8,outage.4)", bba1_variant(8.0, true, 0.4)},
      {"bba1(min8,outage.8)", bba1_variant(8.0, true, 0.8)},
      {"bba1(min24,outage.4)", bba1_variant(24.0, true, 0.4)},
      {"bba1(min40,outage.4)", bba1_variant(40.0, true, 0.4)},
      {"rmin-always", exp::make_rmin_factory()},
  };
  const exp::AbTestResult result = exp::run_ab_test(
      groups, bench::standard_library(), bench::standard_config());

  util::Table table({"variant", "rebuf/hr", "avg kb/s", "steady kb/s",
                     "switch/hr"});
  for (std::size_t g = 0; g < result.num_groups(); ++g) {
    exp::WindowMetrics total;
    double rate_hours = 0.0, steady_hours = 0.0;
    for (std::size_t w = 0; w < exp::kWindowsPerDay; ++w) {
      const exp::WindowMetrics m = result.merged(g, w);
      total.play_hours += m.play_hours;
      total.rebuffer_count += m.rebuffer_count;
      total.switch_count += m.switch_count;
      rate_hours += m.avg_rate_bps * m.play_hours;
      steady_hours += m.steady_rate_bps * m.play_hours;
    }
    table.add_row({result.group_names[g],
                   util::format("%.2f", total.rebuffers_per_hour()),
                   util::format("%.0f", util::to_kbps(rate_hours /
                                                      total.play_hours)),
                   util::format("%.0f", util::to_kbps(steady_hours /
                                                      total.play_hours)),
                   util::format("%.1f", total.switches_per_hour())});
  }
  table.print();

  bool ok = true;
  const auto rb = exp::rebuffers_per_hour_metric();
  ok &= exp::shape_check(
      exp::mean_normalized(result, rb, "bba1(min8,outage.4)",
                           "bba1(min8,no-outage)", false) < 1.0,
      "outage protection reduces BBA-1's rebuffer rate");
  const auto rate = exp::avg_rate_kbps_metric();
  // mean_delta returns baseline minus group: positive means the dynamic
  // reservoir (baseline) out-delivers the fixed 90 s one.
  ok &= exp::shape_check(
      exp::mean_delta(result, rate, "bba0(fixed-90s)", "bba1(min8,outage.4)",
                      false) > 0.0,
      "dynamic reservoir delivers a higher average rate than the fixed "
      "90 s reservoir");
  return bench::verdict(ok);
}
