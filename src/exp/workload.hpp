// Session workload: which title a user watches and for how long.
#pragma once

#include "exp/session_key.hpp"
#include "media/video.hpp"
#include "util/rng.hpp"

namespace bba::exp {

/// One viewing session's intent.
struct SessionSpec {
  std::size_t video_index = 0;
  double watch_duration_s = 0.0;  ///< seconds of video the user will watch
};

/// Workload model parameters.
struct WorkloadConfig {
  /// Log-normal watch duration (seconds): median ~22 min with a heavy
  /// tail, truncated below at 3 min and above at the video length.
  double median_watch_s = 1320.0;
  double sigma_log = 0.7;
  double min_watch_s = 180.0;
};

/// Samples one session: uniform title choice, log-normal watch duration
/// capped by the title length.
SessionSpec sample_session(const media::VideoLibrary& library,
                           const WorkloadConfig& cfg, util::Rng& rng);

/// Coordinate-keyed variant (stream class kWorkload): the session spec is
/// a pure function of the key, unaffected by the environment and trace
/// phases' draw counts.
SessionSpec session_for(const media::VideoLibrary& library,
                        const WorkloadConfig& cfg, const SessionKey& key);

}  // namespace bba::exp
