// bba_obs: render the fleet telemetry artifacts (--timeline-out /
// $BBA_TIMELINE, schema "bba.timeline.v1"; --alerts-out / $BBA_ALERTS,
// schema "bba.alerts.v1") as the paper-style dashboard.
//
//   bba_obs timeline FILE [--csv]
//       Hour-of-day rebuffer-rate / video-rate curves per group (days
//       merged per window), ASCII bars; --csv emits the raw per-cell rows.
//   bba_obs summary FILE
//       p10/p50/p90/p99 of video rate, startup delay, and buffer occupancy
//       per group, from the mergeable quantile sketches (<= ~1.6% relative
//       error per value; see docs/observability.md).
//   bba_obs diff A FILE B FILE ... (positional: bba_obs diff A.json B.json)
//       Control-normalized deltas between two runs: per-(day,window)
//       baseline-normalized ratios as samples, Welch t-test + CI per group
//       and metric (the harness's existing CI machinery). Cells with no
//       sessions or an undefined baseline carry no sample; the skipA/skipB
//       columns count them per row so sparse artifacts are visible.
//   bba_obs health FILE
//       Per-group health report over a bba.alerts.v1 artifact: alert
//       tallies by detector, SLO burn attainment, a per-window alert
//       activity sparkline, and the detector timeline (docs/monitoring.md).
//   bba_obs monitor --follow FILE [--once]
//       Tails a bbackpt checkpoint: one status line per save (fold cursor,
//       alerts fired, last alert). --once prints the current state and
//       exits; without it the tail ends when the run completes.
//
// The artifact models and their strict parsers live in
// tools/obs_artifact.hpp and tools/alerts_artifact.hpp (shared with
// tests/test_obs_cli.cpp). Numeric flags go through the strict
// tools/cli_parse.hpp validators -- "--confidence pony" is a usage error,
// not a silent 0.0.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "alerts_artifact.hpp"
#include "cli_parse.hpp"
#include "exp/checkpoint.hpp"
#include "obs_artifact.hpp"
#include "stats/sketch.hpp"
#include "stats/ttest.hpp"

namespace {

using bba::stats::QuantileSketch;
using bba::tools::AlertData;
using bba::tools::AlertsArtifact;
using bba::tools::Artifact;
using bba::tools::CellData;
using bba::tools::kNumSketchMetrics;
using bba::tools::kSketchMetrics;
using bba::tools::load_alerts;
using bba::tools::load_artifact;
using bba::tools::normalized_samples;

// ---------------------------------------------------------------------------
// timeline: hour-of-day view
// ---------------------------------------------------------------------------

void window_label(std::size_t window, std::size_t windows_per_day,
                  char* buf, std::size_t n) {
  const double hours_per_window = 24.0 / static_cast<double>(windows_per_day);
  const int lo = static_cast<int>(hours_per_window *
                                  static_cast<double>(window));
  const int hi =
      static_cast<int>(hours_per_window * static_cast<double>(window + 1));
  std::snprintf(buf, n, "%02d-%02dh", lo, hi);
}

int cmd_timeline(const std::string& path, bool csv) {
  Artifact a;
  std::string error;
  if (!load_artifact(path, &a, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }

  if (csv) {
    std::printf(
        "day,window,group,sessions,abandoned,rebuffers,fault_stalls,"
        "switches,play_hours,rebuffer_s,join_s,rebuf_per_hour,rate_kbps\n");
    for (const CellData& c : a.cells) {
      std::printf("%zu,%zu,%s,%llu,%llu,%llu,%llu,%llu,%.6f,%.6f,%.6f,"
                  "%.6f,%.3f\n",
                  c.day, c.window, a.groups[c.group].c_str(), c.sessions,
                  c.abandoned, c.rebuffers, c.fault_stalls, c.switches,
                  c.play_h(), static_cast<double>(c.rebuffer_micro) * 1e-6,
                  static_cast<double>(c.join_micro) * 1e-6,
                  c.rebuf_per_hour(), c.rate_kbps());
    }
    return 0;
  }

  const std::vector<CellData> by_window = a.merged_by_window();
  const std::vector<CellData> totals = a.group_totals();
  unsigned long long fleet_sessions = 0;
  for (const CellData& t : totals) fleet_sessions += t.sessions;
  if (fleet_sessions == 0) {
    // A valid but empty artifact (zero cells): a table of zeros reads
    // like a measurement, so say what happened instead.
    std::printf("fleet timeline %s: no sessions recorded (empty artifact)\n",
                path.c_str());
    return 0;
  }
  double max_rebuf_ph = 0.0;
  for (const CellData& c : by_window) {
    if (c.rebuf_per_hour() > max_rebuf_ph) max_rebuf_ph = c.rebuf_per_hour();
  }

  std::printf("fleet timeline %s: seed %llu, %zu day%s x %zu windows\n",
              path.c_str(), a.seed, a.days, a.days == 1 ? "" : "s",
              a.windows);
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    const CellData& t = totals[g];
    std::printf("\ngroup %s: %llu sessions, %.1f play-hours, "
                "%.3f rebuf/ph, %.0f kb/s\n",
                a.groups[g].c_str(), t.sessions, t.play_h(),
                t.rebuf_per_hour(), t.rate_kbps());
    std::printf("  %-7s %8s %8s %9s %10s  %s\n", "window", "sessions",
                "play_h", "rebuf/ph", "rate_kbps", "rebuf/ph bar");
    for (std::size_t w = 0; w < a.windows; ++w) {
      const CellData& c = by_window[w * a.groups.size() + g];
      char label[16];
      window_label(w, a.windows, label, sizeof label);
      constexpr int kBarWidth = 24;
      int bar = 0;
      if (max_rebuf_ph > 0.0) {
        bar = static_cast<int>(c.rebuf_per_hour() / max_rebuf_ph *
                                   kBarWidth +
                               0.5);
      }
      std::printf("  %-7s %8llu %8.2f %9.3f %10.0f  %.*s\n", label,
                  c.sessions, c.play_h(), c.rebuf_per_hour(), c.rate_kbps(),
                  bar, "########################");
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// summary: sketch percentiles
// ---------------------------------------------------------------------------

int cmd_summary(const std::string& path) {
  Artifact a;
  std::string error;
  if (!load_artifact(path, &a, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }
  const std::vector<CellData> totals = a.group_totals();
  unsigned long long fleet_sessions = 0;
  for (const CellData& t : totals) fleet_sessions += t.sessions;
  if (fleet_sessions == 0) {
    std::printf("fleet summary %s: no sessions recorded (empty artifact)\n",
                path.c_str());
    return 0;
  }
  std::printf("fleet summary %s: seed %llu (sketch quantiles, <=1.6%% "
              "relative error)\n",
              path.c_str(), a.seed);
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    std::printf("\ngroup %s: %llu sessions\n", a.groups[g].c_str(),
                totals[g].sessions);
    if (totals[g].sessions == 0) {
      // Empty sketches would render as p10..p99 = 0 -- a fabricated
      // measurement, not an observation.
      std::printf("  (no sessions; quantiles omitted)\n");
      continue;
    }
    std::printf("  %-10s %12s %12s %12s %12s\n", "metric", "p10", "p50",
                "p90", "p99");
    for (std::size_t m = 0; m < kNumSketchMetrics; ++m) {
      const QuantileSketch& sk = a.sketches[g * kNumSketchMetrics + m];
      std::printf("  %-10s %12.6g %12.6g %12.6g %12.6g\n", kSketchMetrics[m],
                  sk.quantile(0.10), sk.quantile(0.50), sk.quantile(0.90),
                  sk.quantile(0.99));
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// diff: Control-normalized deltas between two runs
// ---------------------------------------------------------------------------

int cmd_diff(const std::string& path_a, const std::string& path_b,
             const std::string& baseline_name, double confidence) {
  Artifact a, b;
  std::string error;
  if (!load_artifact(path_a, &a, &error) ||
      !load_artifact(path_b, &b, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }
  if (a.groups != b.groups) {
    std::fprintf(stderr, "bba_obs: group sets differ between %s and %s\n",
                 path_a.c_str(), path_b.c_str());
    return 1;
  }
  std::size_t baseline = 0;
  if (!baseline_name.empty()) {
    baseline = a.groups.size();
    for (std::size_t g = 0; g < a.groups.size(); ++g) {
      if (a.groups[g] == baseline_name) baseline = g;
    }
    if (baseline == a.groups.size()) {
      std::fprintf(stderr, "bba_obs: unknown baseline group %s\n",
                   baseline_name.c_str());
      return 1;
    }
  }

  struct Metric {
    const char* name;
    double (CellData::*get)() const;
  };
  const Metric metrics[] = {{"rebuf/ph", &CellData::rebuf_per_hour},
                            {"rate_kbps", &CellData::rate_kbps}};

  std::printf("fleet diff: A=%s (seed %llu)  B=%s (seed %llu)\n",
              path_a.c_str(), a.seed, path_b.c_str(), b.seed);
  std::printf("baseline group: %s; samples are per-(day,window) ratios vs "
              "baseline; Welch t-test at %.0f%% confidence\n",
              a.groups[baseline].c_str(), confidence * 100.0);
  std::printf("skipA/skipB count grid cells with no sample on that side "
              "(no sessions, or an undefined baseline value)\n");
  std::printf("%-12s %-10s %6s %6s %6s %6s %10s %10s %10s %22s %8s\n",
              "group", "metric", "nA", "skipA", "nB", "skipB", "A/base",
              "B/base", "delta", "CI", "p");
  std::size_t total_skipped = 0;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    if (g == baseline) continue;
    for (const Metric& m : metrics) {
      std::size_t skip_a = 0, skip_b = 0;
      const std::vector<double> sa =
          normalized_samples(a, g, baseline, m.get, &skip_a);
      const std::vector<double> sb =
          normalized_samples(b, g, baseline, m.get, &skip_b);
      total_skipped += skip_a + skip_b;
      if (sa.size() < 2 || sb.size() < 2) {
        std::printf("%-12s %-10s %6zu %6zu %6zu %6zu  (too few defined "
                    "cells for a test)\n",
                    a.groups[g].c_str(), m.name, sa.size(), skip_a,
                    sb.size(), skip_b);
        continue;
      }
      const bba::stats::TTestResult t =
          bba::stats::welch_t_test(sa, sb, confidence);
      char ci[32];
      std::snprintf(ci, sizeof ci, "[%+.4f, %+.4f]", t.ci_lo, t.ci_hi);
      std::printf("%-12s %-10s %6zu %6zu %6zu %6zu %10.4f %10.4f %+10.4f "
                  "%22s %8.3g\n",
                  a.groups[g].c_str(), m.name, sa.size(), skip_a, sb.size(),
                  skip_b, bba::stats::mean(sa), bba::stats::mean(sb),
                  t.mean_diff, ci, t.p_value);
    }
  }
  std::printf("skipped cells total: %zu\n", total_skipped);
  return 0;
}

// ---------------------------------------------------------------------------
// health: per-group report over the alerts artifact
// ---------------------------------------------------------------------------

int cmd_health(const std::string& path) {
  AlertsArtifact a;
  std::string error;
  if (!load_alerts(path, &a, &error)) {
    std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
    return 1;
  }
  std::printf("fleet health %s: seed %llu, %zu day%s x %zu windows, "
              "%zu groups\n",
              path.c_str(), a.seed, a.days, a.days == 1 ? "" : "s",
              a.windows, a.groups.size());
  std::printf("detectors: ewma (alpha %g, +/-%gsd), cusum (k %g, h %g), "
              "slo burn (rebuffer_ratio>%g x%llu, join_s>%g x%llu), "
              "warmup %llu cells\n",
              a.ewma_alpha, a.ewma_k, a.cusum_k, a.cusum_h,
              a.slo_rebuffer_ratio, a.slo_rebuffer_windows, a.slo_join_s,
              a.slo_join_windows, a.warmup);
  if (a.alerts.empty()) {
    std::printf("healthy: no alerts fired over %llu non-empty cells\n",
                a.summary_cells);
    return 0;
  }

  const std::size_t grid = a.days * a.windows;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    std::size_t n_ewma = 0, n_cusum = 0, n_slo = 0;
    // Per-(day, window) alert counts for the sparkline, and the windows
    // with at least one SLO burn alert for attainment.
    std::vector<std::size_t> activity(grid, 0);
    std::vector<bool> slo_burned(grid, false);
    for (const AlertData& al : a.alerts) {
      if (al.group != g) continue;
      if (al.kind == "ewma") ++n_ewma;
      if (al.kind == "cusum") ++n_cusum;
      const std::size_t w = al.day * a.windows + al.window;
      if (al.kind == "slo") {
        ++n_slo;
        slo_burned[w] = true;
      }
      ++activity[w];
    }
    std::size_t burned = 0, peak = 0, peak_w = 0;
    for (std::size_t w = 0; w < grid; ++w) {
      if (slo_burned[w]) ++burned;
      if (activity[w] > peak) {
        peak = activity[w];
        peak_w = w;
      }
    }
    std::printf("\ngroup %s: %zu alerts (%zu ewma, %zu cusum, %zu slo)\n",
                a.groups[g].c_str(), n_ewma + n_cusum + n_slo, n_ewma,
                n_cusum, n_slo);
    std::printf("  slo attainment: %.1f%% of windows clear of burn "
                "(%zu of %zu burned)\n",
                100.0 * static_cast<double>(grid - burned) /
                    static_cast<double>(grid),
                burned, grid);
    // Sparkline: one glyph per (day, window), alert count on a 5-level
    // ASCII ramp scaled to this group's peak window.
    std::string spark;
    spark.reserve(grid + a.days);
    constexpr char kRamp[] = " .:*#";
    for (std::size_t w = 0; w < grid; ++w) {
      if (w != 0 && w % a.windows == 0) spark += '|';
      std::size_t level = 0;
      if (peak > 0 && activity[w] > 0) {
        level = 1 + activity[w] * 3 / peak;
        if (level > 4) level = 4;
      }
      spark += kRamp[level];
    }
    std::printf("  activity [%s]", spark.c_str());
    if (peak > 0) {
      std::printf("  peak d%zu w%zu (%zu alerts)", peak_w / a.windows,
                  peak_w % a.windows, peak);
    }
    std::printf("\n");
    std::printf("  timeline:\n");
    for (const AlertData& al : a.alerts) {
      if (al.group != g) continue;
      std::printf("    seq %-4llu d%zu w%-2zu %-5s %-14s", al.seq, al.day,
                  al.window, al.kind.c_str(), al.metric.c_str());
      if (al.kind == "ewma") {
        std::printf(" %-4s value %.6g vs %.6g +/- %.6g\n", al.dir.c_str(),
                    al.value, al.center, al.band);
      } else if (al.kind == "cusum") {
        std::printf(" %-4s value %.6g sum %.6g > h %.6g\n", al.dir.c_str(),
                    al.value, al.sum, al.threshold);
      } else {
        std::printf(" up   value %.6g > slo %.6g for %llu windows\n",
                    al.value, al.threshold, al.streak);
      }
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// monitor: tail a checkpoint's health state
// ---------------------------------------------------------------------------

/// One status line from a loaded checkpoint's ALRT section.
void print_monitor_status(const bba::exp::Checkpoint& ck) {
  const bba::obs::MonitorState& st = ck.alerts;
  const double pct =
      ck.total_keys > 0
          ? 100.0 * static_cast<double>(ck.cursor) /
                static_cast<double>(ck.total_keys)
          : 100.0;
  std::printf("key %llu/%llu (%5.1f%%)  cells consumed %llu  alerts %llu",
              static_cast<unsigned long long>(ck.cursor),
              static_cast<unsigned long long>(ck.total_keys), pct,
              static_cast<unsigned long long>(st.consumed),
              static_cast<unsigned long long>(st.alert_seq));
  if (st.deferred) std::printf("  [deferred: sharded run]");
  if (!st.alert_log.empty()) {
    // Last line of the alert log (it ends with '\n').
    std::size_t start = st.alert_log.rfind('\n', st.alert_log.size() - 2);
    start = start == std::string::npos ? 0 : start + 1;
    std::printf("  last: %.*s",
                static_cast<int>(st.alert_log.size() - 1 - start),
                st.alert_log.c_str() + start);
  }
  std::printf("\n");
  std::fflush(stdout);
}

int cmd_monitor(const std::string& path, bool once) {
  std::time_t last_mtime = 0;
  std::uint64_t last_cursor = 0;
  bool printed = false;
  for (;;) {
    struct stat sb;
    if (stat(path.c_str(), &sb) != 0) {
      if (once) {
        std::fprintf(stderr, "bba_obs: cannot stat %s\n", path.c_str());
        return 1;
      }
      // Not written yet: keep waiting for the first save.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      continue;
    }
    if (sb.st_mtime != last_mtime || !printed) {
      last_mtime = sb.st_mtime;
      bba::exp::Checkpoint ck;
      std::string error;
      if (!bba::exp::load_checkpoint(path, &ck, &error)) {
        // A save may be mid-rename; only a --once read treats it as fatal.
        if (once) {
          std::fprintf(stderr, "bba_obs: %s\n", error.c_str());
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        continue;
      }
      if (!ck.has_alerts) {
        std::fprintf(stderr,
                     "bba_obs: %s has no health-monitor section (was the "
                     "run started without --alerts-out?)\n",
                     path.c_str());
        return 1;
      }
      if (!printed || ck.cursor != last_cursor) {
        print_monitor_status(ck);
        printed = true;
        last_cursor = ck.cursor;
      }
      if (once || ck.complete()) return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s timeline FILE [--csv]\n"
      "       %s summary FILE\n"
      "       %s diff A.json B.json [--baseline GROUP] [--confidence C]\n"
      "       %s health FILE\n"
      "       %s monitor --follow FILE [--once]\n"
      "Renders bba.timeline.v1 artifacts (bba_abtest/bba_paper_report/\n"
      "bba_session --timeline-out FILE, or $BBA_TIMELINE) and\n"
      "bba.alerts.v1 artifacts (--alerts-out FILE, or $BBA_ALERTS).\n"
      "  timeline  hour-of-day session/rebuffer/rate table per group\n"
      "            (--csv: raw per-cell rows)\n"
      "  summary   p10/p50/p90/p99 of rate_bps, join_s, buffer_s per group\n"
      "  diff      Control-normalized per-window deltas between two runs\n"
      "            with Welch confidence intervals; reports how many grid\n"
      "            cells carried no sample\n"
      "  health    per-group alert tallies, SLO burn attainment, activity\n"
      "            sparkline, and detector timeline (docs/monitoring.md)\n"
      "  monitor   tail a bbackpt checkpoint's health state, one status\n"
      "            line per save (--once: print current state and exit)\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h") {
    usage(argv[0]);
    return 0;
  }

  if (cmd == "timeline") {
    std::string path;
    bool csv = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        csv = true;
      } else if (path.empty()) {
        path = argv[i];
      } else {
        return usage(argv[0]);
      }
    }
    if (path.empty()) return usage(argv[0]);
    return cmd_timeline(path, csv);
  }
  if (cmd == "summary") {
    if (argc != 3) return usage(argv[0]);
    return cmd_summary(argv[2]);
  }
  if (cmd == "diff") {
    std::string path_a, path_b, baseline;
    double confidence = 0.95;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
        baseline = argv[++i];
      } else if (std::strcmp(argv[i], "--confidence") == 0 && i + 1 < argc) {
        const char* v = argv[++i];
        if (!bba::tools::parse_unit_open(v, &confidence)) {
          std::fprintf(stderr,
                       "--confidence: expects a number in (0, 1), got "
                       "'%s'\n",
                       v);
          return 2;
        }
      } else if (path_a.empty()) {
        path_a = argv[i];
      } else if (path_b.empty()) {
        path_b = argv[i];
      } else {
        return usage(argv[0]);
      }
    }
    if (path_a.empty() || path_b.empty()) return usage(argv[0]);
    return cmd_diff(path_a, path_b, baseline, confidence);
  }
  if (cmd == "health") {
    if (argc != 3) return usage(argv[0]);
    return cmd_health(argv[2]);
  }
  if (cmd == "monitor") {
    std::string path;
    bool once = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--follow") == 0 && i + 1 < argc) {
        path = argv[++i];
      } else if (std::strcmp(argv[i], "--once") == 0) {
        once = true;
      } else {
        return usage(argv[0]);
      }
    }
    if (path.empty()) return usage(argv[0]);
    return cmd_monitor(path, once);
  }
  return usage(argv[0]);
}
