# Empty compiler generated dependencies file for fig18_steady_state_rate.
# This may be replaced when dependencies are built.
