file(REMOVE_RECURSE
  "libbba_media.a"
)
