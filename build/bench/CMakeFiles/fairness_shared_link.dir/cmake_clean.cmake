file(REMOVE_RECURSE
  "CMakeFiles/fairness_shared_link.dir/fairness_shared_link.cpp.o"
  "CMakeFiles/fairness_shared_link.dir/fairness_shared_link.cpp.o.d"
  "fairness_shared_link"
  "fairness_shared_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairness_shared_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
