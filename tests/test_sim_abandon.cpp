// Tests for the viewer give-up-on-stall model.
#include <gtest/gtest.h>

#include "abr/baselines.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/units.hpp"

namespace bba::sim {
namespace {

using util::kbps;
using util::mbps;

media::Video cbr(std::size_t chunks = 50) {
  return media::make_cbr_video("t", media::EncodingLadder::netflix_2013(),
                               chunks, 4.0);
}

TEST(GiveUp, InfinitePatienceNeverAbandons) {
  const media::Video video = cbr(10);
  // Every chunk stalls 4 s (capacity at half of R_min).
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(117.5));
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  EXPECT_FALSE(r.abandoned);
  EXPECT_NEAR(r.played_s, 40.0, 1e-6);
}

TEST(GiveUp, WalksOutDuringLongStall) {
  const media::Video video = cbr(10);
  // Chunk 1 takes 40 s while only 4 s is buffered: a ~36 s stall.
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(23.5));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.give_up_stall_s = 10.0;
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_TRUE(r.abandoned);
  ASSERT_EQ(r.rebuffers.size(), 1u);
  EXPECT_NEAR(r.rebuffers[0].duration_s, 10.0, 1e-9);
  // Playback covered only the first chunk before the walk-out.
  EXPECT_NEAR(r.played_s, 4.0, 1e-9);
  // Wall clock ends exactly when patience ran out.
  EXPECT_NEAR(r.wall_s, r.rebuffers[0].start_s + 10.0, 1e-9);
}

TEST(GiveUp, ShortStallsAreTolerated) {
  const media::Video video = cbr(10);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(117.5));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.give_up_stall_s = 10.0;  // stalls here are only ~4 s
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_FALSE(r.abandoned);
  EXPECT_NEAR(r.played_s, 40.0, 1e-6);
  EXPECT_GE(r.rebuffers.size(), 5u);
}

TEST(GiveUp, PatienceExactlyAtStallLengthTolerates) {
  const media::Video video = cbr(5);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(117.5));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.give_up_stall_s = 4.0;  // stalls are exactly 4 s
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_FALSE(r.abandoned);
}

TEST(GiveUp, AbandonedSessionMetricsAreConsistent) {
  const media::Video video = cbr(10);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(23.5));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.give_up_stall_s = 10.0;
  const SessionMetrics m =
      compute_metrics(simulate_session(video, trace, abr, cfg));
  EXPECT_TRUE(m.abandoned);
  EXPECT_EQ(m.rebuffer_count, 1);
  EXPECT_DOUBLE_EQ(m.rebuffer_s, 10.0);
  EXPECT_GT(m.play_s, 0.0);
}

}  // namespace
}  // namespace bba::sim
