#include "exp/abtest.hpp"

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "sim/metrics.hpp"
#include "util/assert.hpp"

namespace bba::exp {

namespace {

/// Accumulates one session into a window cell; rate averages are
/// play-time weighted.
void accumulate(WindowMetrics& cell, const sim::SessionMetrics& m) {
  const double hours = m.play_s / 3600.0;
  const double prev_hours = cell.play_hours;
  cell.play_hours += hours;
  cell.rebuffer_count += static_cast<double>(m.rebuffer_count);
  cell.rebuffer_s += m.rebuffer_s;
  cell.switch_count += static_cast<double>(m.switch_count);
  cell.sessions += 1;
  if (cell.play_hours > 0.0) {
    const double w_new = hours / cell.play_hours;
    cell.avg_rate_bps += (m.avg_rate_bps - cell.avg_rate_bps) * w_new;
    // Startup/steady use the same play-hours weighting for simplicity; the
    // startup window is a fixed 120 s per session, so the bias is tiny.
    cell.startup_rate_bps +=
        (m.startup_rate_bps - cell.startup_rate_bps) * w_new;
    if (m.has_steady) {
      cell.steady_rate_bps +=
          (m.steady_rate_bps - cell.steady_rate_bps) * w_new;
    } else if (prev_hours == 0.0) {
      cell.steady_rate_bps = m.avg_rate_bps;
    }
  }
}

}  // namespace

std::size_t AbTestResult::group_index(const std::string& name) const {
  for (std::size_t i = 0; i < group_names.size(); ++i) {
    if (group_names[i] == name) return i;
  }
  BBA_ASSERT(false, "unknown group name");
  return 0;
}

WindowMetrics AbTestResult::merged(std::size_t group,
                                   std::size_t window) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  WindowMetrics out;
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    const WindowMetrics& c = day[window];
    const double total = out.play_hours + c.play_hours;
    if (total > 0.0) {
      const double w_new = c.play_hours / total;
      out.avg_rate_bps += (c.avg_rate_bps - out.avg_rate_bps) * w_new;
      out.startup_rate_bps +=
          (c.startup_rate_bps - out.startup_rate_bps) * w_new;
      out.steady_rate_bps +=
          (c.steady_rate_bps - out.steady_rate_bps) * w_new;
    }
    out.play_hours = total;
    out.rebuffer_count += c.rebuffer_count;
    out.rebuffer_s += c.rebuffer_s;
    out.switch_count += c.switch_count;
    out.sessions += c.sessions;
  }
  return out;
}

std::vector<double> AbTestResult::per_day(
    std::size_t group, std::size_t window,
    const std::function<double(const WindowMetrics&)>& metric) const {
  BBA_ASSERT(group < cells.size(), "group out of range");
  std::vector<double> values;
  values.reserve(cells[group].size());
  for (const auto& day : cells[group]) {
    BBA_ASSERT(window < day.size(), "window out of range");
    values.push_back(metric(day[window]));
  }
  return values;
}

AbTestResult run_ab_test(const std::vector<Group>& groups,
                         const media::VideoLibrary& library,
                         const AbTestConfig& cfg) {
  BBA_ASSERT(!groups.empty(), "at least one group required");
  BBA_ASSERT(cfg.days >= 1 && cfg.sessions_per_window >= 1,
             "experiment dimensions must be >= 1");

  const Population population(cfg.population);
  util::Rng master(cfg.seed);

  AbTestResult result;
  result.group_names.reserve(groups.size());
  for (const auto& g : groups) result.group_names.push_back(g.name);
  result.cells.assign(
      groups.size(),
      std::vector<std::vector<WindowMetrics>>(
          cfg.days, std::vector<WindowMetrics>(kWindowsPerDay)));

  for (std::size_t day = 0; day < cfg.days; ++day) {
    for (std::size_t window = 0; window < kWindowsPerDay; ++window) {
      for (std::size_t user = 0; user < cfg.sessions_per_window; ++user) {
        // Common random numbers: the environment stream is a pure function
        // of (seed, day, window, user) and shared by all groups.
        const std::uint64_t stream =
            (day * kWindowsPerDay + window) * cfg.sessions_per_window + user;
        util::Rng env_rng = master.fork(stream);
        const UserEnvironment env =
            population.sample_environment(window, env_rng);
        const net::CapacityTrace trace = population.make_trace(env, env_rng);
        const SessionSpec spec =
            sample_session(library, cfg.workload, env_rng);
        const media::Video& video = library.at(spec.video_index);

        sim::PlayerConfig player = cfg.player;
        player.watch_duration_s = spec.watch_duration_s;

        for (std::size_t g = 0; g < groups.size(); ++g) {
          auto algorithm = groups[g].factory();
          BBA_ASSERT(algorithm != nullptr, "group factory returned null");
          const sim::SessionResult session =
              sim::simulate_session(video, trace, *algorithm, player);
          accumulate(result.cells[g][day][window],
                     sim::compute_metrics(session));
        }
      }
    }
  }
  return result;
}

AbrFactory make_control_factory() {
  return [] { return std::make_unique<abr::ControlAbr>(); };
}

AbrFactory make_rmin_factory() {
  return [] { return std::make_unique<abr::RMinAlways>(); };
}

AbrFactory make_bba0_factory() {
  return [] { return std::make_unique<core::Bba0>(); };
}

AbrFactory make_bba1_factory() {
  return [] { return std::make_unique<core::Bba1>(); };
}

AbrFactory make_bba2_factory() {
  return [] { return std::make_unique<core::Bba2>(); };
}

AbrFactory make_bba_others_factory() {
  return [] { return std::make_unique<core::BbaOthers>(); };
}

}  // namespace bba::exp
