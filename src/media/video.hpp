// A streamable title: encoding ladder + chunk table, plus a small synthetic
// library of titles with distinct complexity profiles for the experiment
// workload.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "media/chunk_table.hpp"
#include "media/encoding_ladder.hpp"
#include "media/vbr.hpp"
#include "util/rng.hpp"

namespace bba::media {

/// One title as seen by the client: the rates it is encoded at and the size
/// of every chunk at every rate. Immutable after construction.
class Video {
 public:
  Video(std::string name, EncodingLadder ladder, ChunkTable chunks);

  const std::string& name() const { return name_; }
  const EncodingLadder& ladder() const { return ladder_; }
  const ChunkTable& chunks() const { return chunks_; }
  double chunk_duration_s() const { return chunks_.chunk_duration_s(); }
  std::size_t num_chunks() const { return chunks_.num_chunks(); }
  double duration_s() const { return chunks_.video_duration_s(); }

 private:
  std::string name_;
  EncodingLadder ladder_;
  ChunkTable chunks_;
};

/// Builds a CBR test video (every chunk exactly V * R bits).
Video make_cbr_video(std::string name, const EncodingLadder& ladder,
                     std::size_t num_chunks, double chunk_duration_s);

/// Builds a VBR video from a complexity profile config.
Video make_vbr_video(std::string name, const EncodingLadder& ladder,
                     std::size_t num_chunks, double chunk_duration_s,
                     const VbrConfig& cfg, util::Rng& rng);

/// A fixed library of synthetic titles spanning the complexity profiles the
/// paper discusses: steady dramas, bursty action titles, and
/// credits-heavy titles whose opening minutes are near-static.
class VideoLibrary {
 public:
  /// Builds the standard library deterministically from a seed.
  /// Titles are ~100 minutes long with 4-second chunks.
  static VideoLibrary standard(std::uint64_t seed);

  /// Same titles re-encoded on an arbitrary ladder -- e.g.
  /// `EncodingLadder::netflix_2013_rmin560()` for the paper's footnote-3
  /// mechanism (R_min artificially raised to 560 kb/s for users who
  /// historically sustain it).
  static VideoLibrary standard(std::uint64_t seed,
                               const EncodingLadder& ladder);

  std::size_t size() const { return videos_.size(); }
  const Video& at(std::size_t i) const;

  /// Uniformly random title.
  const Video& pick(util::Rng& rng) const;

 private:
  std::vector<std::shared_ptr<const Video>> videos_;
};

}  // namespace bba::media
