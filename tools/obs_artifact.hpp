// The bba.timeline.v1 artifact model + strict parser, shared by the
// bba_obs CLI (tools/bba_obs_cli.cpp) and its tests
// (tests/test_obs_cli.cpp).
//
// The artifact is this repo's own machine-written single-line JSON
// (obs/timeline.cpp), so the parser is a strict cursor scanner for
// exactly that member order -- the tools/trace_check.py --timeline
// validator enforces the same shape in CI. Anything else fails with a
// position-anchored diagnostic instead of being guessed at.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "stats/sketch.hpp"

namespace bba::tools {

/// One (day, window, group) timeline cell: integer tallies plus the
/// derived per-hour rates the dashboard renders.
struct CellData {
  std::size_t day = 0, window = 0, group = 0;
  unsigned long long sessions = 0, abandoned = 0, rebuffers = 0,
                     fault_stalls = 0, switches = 0, play_micro = 0,
                     rebuffer_micro = 0, join_micro = 0, rate_play_kbit = 0;

  double play_h() const {
    return static_cast<double>(play_micro) * 1e-6 / 3600.0;
  }
  double play_s() const { return static_cast<double>(play_micro) * 1e-6; }
  double rebuf_per_hour() const {
    const double h = play_h();
    return h > 0.0 ? static_cast<double>(rebuffers) / h : 0.0;
  }
  double rate_kbps() const {
    const double s = play_s();
    return s > 0.0 ? static_cast<double>(rate_play_kbit) / s : 0.0;
  }

  void merge(const CellData& o) {
    sessions += o.sessions;
    abandoned += o.abandoned;
    rebuffers += o.rebuffers;
    fault_stalls += o.fault_stalls;
    switches += o.switches;
    play_micro += o.play_micro;
    rebuffer_micro += o.rebuffer_micro;
    join_micro += o.join_micro;
    rate_play_kbit += o.rate_play_kbit;
  }
};

inline constexpr const char* kSketchMetrics[] = {"rate_bps", "join_s",
                                                 "buffer_s"};
inline constexpr std::size_t kNumSketchMetrics = 3;

struct Artifact {
  unsigned long long seed = 0;
  std::size_t days = 0, windows = 0;
  std::vector<std::string> groups;
  std::vector<CellData> cells;
  /// [group * kNumSketchMetrics + metric]
  std::vector<stats::QuantileSketch> sketches;

  /// Per-(window, group) cells merged across days.
  std::vector<CellData> merged_by_window() const {
    std::vector<CellData> out(windows * groups.size());
    for (const CellData& c : cells) {
      out[c.window * groups.size() + c.group].merge(c);
    }
    return out;
  }
  /// One cell per group, merged over the whole grid.
  std::vector<CellData> group_totals() const {
    std::vector<CellData> out(groups.size());
    for (const CellData& c : cells) out[c.group].merge(c);
    return out;
  }
};

/// Strict cursor scanner for the artifact's fixed member order.
class Scanner {
 public:
  explicit Scanner(const std::string& text)
      : p_(text.c_str()), end_(p_ + text.size()) {}

  bool lit(const char* s) {
    ws();
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) < n ||
        std::memcmp(p_, s, n) != 0) {
      return fail(s);
    }
    p_ += n;
    return true;
  }
  bool u64(unsigned long long* out) {
    ws();
    if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return fail("unsigned integer");
    }
    *out = 0;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
      *out = *out * 10 + static_cast<unsigned long long>(*p_ - '0');
      ++p_;
    }
    return true;
  }
  bool quoted(std::string* out) {
    if (!lit("\"")) return false;
    out->clear();
    while (p_ < end_ && *p_ != '"') *out += *p_++;
    if (p_ >= end_) return fail("closing quote");
    ++p_;
    return true;
  }
  bool peek(char c) {
    ws();
    return p_ < end_ && *p_ == c;
  }
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\r' ||
                         *p_ == '\t')) {
      ++p_;
    }
  }
  bool fail(const char* expected) {
    if (error_.empty()) {
      error_ = std::string("expected '") + expected + "' near: " +
               std::string(p_, std::min<std::size_t>(
                                   24, static_cast<std::size_t>(end_ - p_)));
    }
    return false;
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

inline bool parse_artifact(const std::string& text, const std::string& path,
                           Artifact* out, std::string* error) {
  Scanner s(text);
  unsigned long long days = 0, windows = 0;
  bool ok = s.lit("{\"schema\":\"bba.timeline.v1\",\"seed\":") &&
            s.u64(&out->seed) && s.lit(",\"days\":") && s.u64(&days) &&
            s.lit(",\"windows_per_day\":") && s.u64(&windows) &&
            s.lit(",\"groups\":[");
  out->days = static_cast<std::size_t>(days);
  out->windows = static_cast<std::size_t>(windows);
  while (ok && !s.peek(']')) {
    if (!out->groups.empty()) ok = s.lit(",");
    std::string name;
    ok = ok && s.quoted(&name);
    if (ok) out->groups.push_back(name);
  }
  ok = ok && s.lit("],\"cells\":[");
  while (ok && !s.peek(']')) {
    if (!out->cells.empty()) ok = s.lit(",");
    CellData c;
    unsigned long long day = 0, window = 0, group = 0;
    ok = ok && s.lit("{\"day\":") && s.u64(&day) && s.lit(",\"window\":") &&
         s.u64(&window) && s.lit(",\"group\":") && s.u64(&group) &&
         s.lit(",\"sessions\":") && s.u64(&c.sessions) &&
         s.lit(",\"abandoned\":") && s.u64(&c.abandoned) &&
         s.lit(",\"rebuffers\":") && s.u64(&c.rebuffers) &&
         s.lit(",\"fault_stalls\":") && s.u64(&c.fault_stalls) &&
         s.lit(",\"switches\":") && s.u64(&c.switches) &&
         s.lit(",\"play_micro\":") && s.u64(&c.play_micro) &&
         s.lit(",\"rebuffer_micro\":") && s.u64(&c.rebuffer_micro) &&
         s.lit(",\"join_micro\":") && s.u64(&c.join_micro) &&
         s.lit(",\"rate_play_kbit\":") && s.u64(&c.rate_play_kbit) &&
         s.lit("}");
    c.day = static_cast<std::size_t>(day);
    c.window = static_cast<std::size_t>(window);
    c.group = static_cast<std::size_t>(group);
    if (ok && (c.day >= out->days || c.window >= out->windows ||
               c.group >= out->groups.size())) {
      *error = path + ": cell indices out of range";
      return false;
    }
    if (ok) out->cells.push_back(c);
  }
  ok = ok && s.lit("],\"sketches\":[");
  out->sketches.assign(out->groups.size() * kNumSketchMetrics,
                       stats::QuantileSketch{});
  bool first_sketch = true;
  while (ok && !s.peek(']')) {
    if (!first_sketch) ok = s.lit(",");
    first_sketch = false;
    unsigned long long group = 0, zero = 0, count = 0;
    std::string metric;
    ok = ok && s.lit("{\"group\":") && s.u64(&group) &&
         s.lit(",\"metric\":") && s.quoted(&metric) && s.lit(",\"zero\":") &&
         s.u64(&zero) && s.lit(",\"count\":") && s.u64(&count) &&
         s.lit(",\"buckets\":[");
    std::size_t metric_idx = kNumSketchMetrics;
    for (std::size_t m = 0; m < kNumSketchMetrics; ++m) {
      if (metric == kSketchMetrics[m]) metric_idx = m;
    }
    if (ok && (group >= out->groups.size() ||
               metric_idx == kNumSketchMetrics)) {
      *error = path + ": unknown sketch group/metric";
      return false;
    }
    stats::QuantileSketch sk;
    sk.add_zero(zero);
    bool first_bucket = true;
    while (ok && !s.peek(']')) {
      if (!first_bucket) ok = s.lit(",");
      first_bucket = false;
      unsigned long long bucket = 0, n = 0;
      ok = ok && s.lit("[") && s.u64(&bucket) && s.lit(",") && s.u64(&n) &&
           s.lit("]");
      if (ok) sk.add_bucket(static_cast<int>(bucket), n);
    }
    ok = ok && s.lit("]}");
    if (ok && sk.count() != count) {
      *error = path + ": sketch bucket counts do not sum to count";
      return false;
    }
    if (ok) {
      out->sketches[static_cast<std::size_t>(group) * kNumSketchMetrics +
                    metric_idx] = sk;
    }
  }
  ok = ok && s.lit("]}");
  if (!ok) {
    *error = path + ": " + (s.error().empty() ? "parse error" : s.error());
    return false;
  }
  return true;
}

inline bool load_artifact(const std::string& path, Artifact* out,
                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "could not read " + path;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_artifact(buf.str(), path, out, error);
}

/// Per-(day, window) baseline-normalized samples of one metric for one
/// group: value(group cell) / value(baseline cell). Cells where either
/// side is undefined (no sessions on one side, or a zero/undefined
/// baseline value) carry no sample; `*skipped` (if non-null) counts them
/// so a diff can SAY how much of the grid it ignored instead of silently
/// thinning the sample set (a sparse partial artifact used to look like a
/// confident full-grid comparison).
inline std::vector<double> normalized_samples(
    const Artifact& a, std::size_t group, std::size_t baseline,
    double (CellData::*metric)() const, std::size_t* skipped = nullptr) {
  // Index cells by (day, window, group) for O(1) pairing.
  std::vector<CellData> grid(a.days * a.windows * a.groups.size());
  for (const CellData& c : a.cells) {
    grid[(c.day * a.windows + c.window) * a.groups.size() + c.group] = c;
  }
  std::vector<double> samples;
  samples.reserve(a.days * a.windows);
  if (skipped != nullptr) *skipped = 0;
  for (std::size_t d = 0; d < a.days; ++d) {
    for (std::size_t w = 0; w < a.windows; ++w) {
      const CellData& cg =
          grid[(d * a.windows + w) * a.groups.size() + group];
      const CellData& cb =
          grid[(d * a.windows + w) * a.groups.size() + baseline];
      const double vb = (cb.*metric)();
      if (cg.sessions == 0 || cb.sessions == 0 || !(vb > 0.0)) {
        if (skipped != nullptr) ++*skipped;
        continue;
      }
      samples.push_back((cg.*metric)() / vb);
    }
  }
  return samples;
}

}  // namespace bba::tools
