// Tests for bba::sim: player buffer dynamics, rebuffering, ON-OFF
// behaviour, session truncation, and metric computation -- checked against
// hand-computed traces.
#include <gtest/gtest.h>

#include <cmath>

#include "abr/baselines.hpp"
#include "media/video.hpp"
#include "net/capacity_trace.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba::sim {
namespace {

using util::kbps;
using util::mbps;

media::Video small_cbr_video(std::size_t chunks = 100) {
  return media::make_cbr_video("t", media::EncodingLadder::netflix_2013(),
                               chunks, 4.0);
}

TEST(Player, SteadyStateOnFastConstantLink) {
  // R_min chunks are 0.94 Mb; at 9.4 Mb/s each takes exactly 0.1 s.
  const media::Video video = small_cbr_video(50);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(2350));
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);

  ASSERT_EQ(r.chunks.size(), 50u);
  EXPECT_TRUE(r.started);
  EXPECT_TRUE(r.rebuffers.empty());
  EXPECT_FALSE(r.abandoned);
  // Download time per chunk: 235e3*4 bits / 2.35e6 = 0.4 s.
  EXPECT_NEAR(r.chunks[0].download_s, 0.4, 1e-9);
  EXPECT_NEAR(r.chunks[0].throughput_bps, kbps(2350), 1.0);
  // Playback starts when the first chunk lands.
  EXPECT_NEAR(r.join_s, 0.4, 1e-9);
  // The whole 200 s video plays out.
  EXPECT_NEAR(r.played_s, 200.0, 1e-9);
}

TEST(Player, BufferGrowsAtCapacityOverRate) {
  // Fig. 2: buffer fills at rate C/R while playing.
  const media::Video video = small_cbr_video(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(470));
  abr::RMinAlways abr;  // rate 235 kb/s -> C/R = 2
  const SessionResult r = simulate_session(video, trace, abr);
  // Each chunk takes 2 s and adds 4 s: net +2 s per 2 s of wall time after
  // playback starts (buffer after chunk k ~ 2 + 2k until the cap).
  ASSERT_GE(r.chunks.size(), 10u);
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_NEAR(r.chunks[k].buffer_after_s - r.chunks[k - 1].buffer_after_s,
                2.0, 1e-9);
  }
}

TEST(Player, RebufferWhenCapacityBelowRate) {
  // Capacity below R_min: every chunk takes 8 s but plays 4 s.
  const media::Video video = small_cbr_video(20);
  const net::CapacityTrace trace =
      net::CapacityTrace::constant(kbps(117.5));  // half of R_min
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  // Chunk 0 lands at t=8, playback starts with 4 s of buffer; chunk 1
  // takes 8 s, so the buffer dies 4 s in: one stall per chunk thereafter.
  EXPECT_GE(r.rebuffers.size(), 15u);
  double stall = 0.0;
  for (const auto& rb : r.rebuffers) stall += rb.duration_s;
  // Per steady-state chunk: 8 s download vs 4 s of content -> 4 s stall.
  EXPECT_NEAR(stall / static_cast<double>(r.rebuffers.size()), 4.0, 0.5);
  // All content still plays eventually.
  EXPECT_NEAR(r.played_s, 80.0, 1e-6);
}

TEST(Player, StallTimingIsExact) {
  const media::Video video = small_cbr_video(3);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(117.5));
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  ASSERT_EQ(r.rebuffers.size(), 2u);
  // Chunk 0 lands at 8 s (join); buffer 4 s drains by 12 s; chunk 1 lands
  // at 16 s -> stall [12, 16].
  EXPECT_NEAR(r.rebuffers[0].start_s, 12.0, 1e-9);
  EXPECT_NEAR(r.rebuffers[0].duration_s, 4.0, 1e-9);
  EXPECT_EQ(r.rebuffers[0].chunk_index, 1u);
}

TEST(Player, OnOffWaitWhenBufferFull) {
  // Very fast link: the 240 s buffer fills, then requests pace at 4 s.
  const media::Video video = small_cbr_video(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(100));
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  EXPECT_TRUE(r.rebuffers.empty());
  // Buffer capacity 240 s; chunks beyond the ~60th must wait (ON-OFF).
  bool saw_wait = false;
  double max_buffer = 0.0;
  for (const auto& c : r.chunks) {
    if (c.off_wait_s > 0.0) saw_wait = true;
    max_buffer = std::max(max_buffer, c.buffer_after_s);
  }
  EXPECT_TRUE(saw_wait);
  EXPECT_LE(max_buffer, 240.0 + 1e-9);
}

TEST(Player, OnOffWaitsApproachChunkDuration) {
  const media::Video video = small_cbr_video(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(100));
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  // In the saturated regime each wait is ~V minus the download time.
  const auto& last = r.chunks.back();
  EXPECT_NEAR(last.off_wait_s, 4.0 - last.download_s, 1e-6);
}

TEST(Player, WatchDurationTruncatesSession) {
  const media::Video video = small_cbr_video(200);  // 800 s of video
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 100.0;
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_NEAR(r.played_s, 100.0, 1e-9);
  // Should not have downloaded the whole title.
  EXPECT_LT(r.chunks.size(), 200u);
}

TEST(Player, WatchBeyondVideoLengthPlaysWholeTitle) {
  const media::Video video = small_cbr_video(10);  // 40 s
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(10));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.watch_duration_s = 1e9;
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_NEAR(r.played_s, 40.0, 1e-9);
  EXPECT_EQ(r.chunks.size(), 10u);
}

TEST(Player, DeadLinkAbandonsSession) {
  const media::Video video = small_cbr_video(10);
  const net::CapacityTrace trace({{5.0, mbps(1)}}, /*loop=*/false);
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  EXPECT_TRUE(r.abandoned);
  // Whatever was buffered still plays out.
  EXPECT_GT(r.played_s, 0.0);
  EXPECT_LT(r.played_s, 40.0);
}

TEST(Player, WallClockGuardAbandons) {
  const media::Video video = small_cbr_video(100);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(50));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.max_wall_s = 60.0;
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  EXPECT_TRUE(r.abandoned);
}

TEST(Player, PlayThresholdDelaysJoin) {
  const media::Video video = small_cbr_video(50);
  const net::CapacityTrace trace = net::CapacityTrace::constant(kbps(940));
  abr::RMinAlways abr;
  PlayerConfig cfg;
  cfg.play_threshold_s = 12.0;  // three chunks
  const SessionResult r = simulate_session(video, trace, abr, cfg);
  // Chunks take 1 s each; the third lands at t=3 with 12 s buffered.
  EXPECT_NEAR(r.join_s, 3.0, 1e-9);
  EXPECT_TRUE(r.rebuffers.empty());
}

TEST(Player, ChunkRecordsAreConsistent) {
  const media::Video video = small_cbr_video(30);
  util::Rng rng(3);
  net::MarkovTraceConfig cfg;
  const net::CapacityTrace trace = net::make_markov_trace(cfg, rng);
  abr::RMinAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  for (std::size_t i = 0; i < r.chunks.size(); ++i) {
    const auto& c = r.chunks[i];
    EXPECT_EQ(c.index, i);
    EXPECT_NEAR(c.finish_s - c.request_s, c.download_s, 1e-9);
    EXPECT_NEAR(c.throughput_bps * c.download_s, c.size_bits, 1e-3);
    if (i > 0) {
      EXPECT_GE(c.request_s, r.chunks[i - 1].finish_s - 1e-9);
    }
  }
}

TEST(Player, SequentialDownloadsNeverOverlap) {
  const media::Video video = small_cbr_video(40);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(2));
  abr::RMaxAlways abr;
  const SessionResult r = simulate_session(video, trace, abr);
  for (std::size_t i = 1; i < r.chunks.size(); ++i) {
    EXPECT_GE(r.chunks[i].request_s, r.chunks[i - 1].finish_s - 1e-9);
  }
}

TEST(Metrics, RebuffersPerHour) {
  SessionResult r;
  r.chunk_duration_s = 4.0;
  r.played_s = 1800.0;  // half an hour
  r.rebuffers.push_back({10.0, 2.0, 1});
  r.rebuffers.push_back({20.0, 3.0, 2});
  const SessionMetrics m = compute_metrics(r);
  EXPECT_EQ(m.rebuffer_count, 2);
  EXPECT_DOUBLE_EQ(m.rebuffer_s, 5.0);
  EXPECT_DOUBLE_EQ(m.rebuffers_per_hour, 4.0);
}

TEST(Metrics, AverageRateIsPlayWeighted) {
  SessionResult r;
  r.chunk_duration_s = 4.0;
  r.played_s = 8.0;  // exactly two chunks played
  r.chunks.push_back({0, 0, 1000.0, 4000.0, 0, 1, 1, 4000.0, 4, 0, 0.0});
  r.chunks.push_back({1, 1, 3000.0, 12000.0, 1, 2, 1, 12000.0, 8, 0, 4.0});
  r.chunks.push_back({2, 2, 9000.0, 36000.0, 2, 3, 1, 36000.0, 12, 0, 8.0});
  const SessionMetrics m = compute_metrics(r);
  // Only the first two chunks play: mean of 1000 and 3000.
  EXPECT_DOUBLE_EQ(m.avg_rate_bps, 2000.0);
}

TEST(Metrics, PartialChunkWeighting) {
  SessionResult r;
  r.chunk_duration_s = 4.0;
  r.played_s = 6.0;  // one full chunk + half of the next
  r.chunks.push_back({0, 0, 1000.0, 4000.0, 0, 1, 1, 4000.0, 4, 0, 0.0});
  r.chunks.push_back({1, 1, 4000.0, 16000.0, 1, 2, 1, 16000.0, 8, 0, 4.0});
  const SessionMetrics m = compute_metrics(r);
  EXPECT_DOUBLE_EQ(m.avg_rate_bps, (1000.0 * 4 + 4000.0 * 2) / 6.0);
}

TEST(Metrics, StartupSteadySplit) {
  SessionResult r;
  r.chunk_duration_s = 4.0;
  r.played_s = 240.0;
  // 60 chunks: first 30 at 1000, rest at 5000.
  for (std::size_t k = 0; k < 60; ++k) {
    const double rate = k < 30 ? 1000.0 : 5000.0;
    r.chunks.push_back({k, 0, rate, rate * 4, 0, 1, 1, rate * 4, 10, 0,
                        4.0 * static_cast<double>(k)});
  }
  const SessionMetrics m = compute_metrics(r, /*steady_after_s=*/120.0);
  EXPECT_DOUBLE_EQ(m.startup_rate_bps, 1000.0);
  EXPECT_DOUBLE_EQ(m.steady_rate_bps, 5000.0);
  EXPECT_TRUE(m.has_steady);
  EXPECT_DOUBLE_EQ(m.avg_rate_bps, 3000.0);
}

TEST(Metrics, ShortSessionHasNoSteadyPhase) {
  SessionResult r;
  r.chunk_duration_s = 4.0;
  r.played_s = 60.0;
  for (std::size_t k = 0; k < 15; ++k) {
    r.chunks.push_back({k, 0, 1000.0, 4000.0, 0, 1, 1, 4000.0, 10, 0,
                        4.0 * static_cast<double>(k)});
  }
  const SessionMetrics m = compute_metrics(r);
  EXPECT_FALSE(m.has_steady);
  EXPECT_DOUBLE_EQ(m.startup_rate_bps, 1000.0);
}

TEST(Metrics, SwitchCounting) {
  SessionResult r;
  r.chunk_duration_s = 4.0;
  r.played_s = 3600.0;
  const std::size_t rates[] = {0, 0, 1, 1, 2, 1, 1, 0};
  std::size_t k = 0;
  for (std::size_t rate : rates) {
    r.chunks.push_back({k, rate, 1000.0, 4000.0, 0, 1, 1, 4000.0, 10, 0,
                        4.0 * static_cast<double>(k)});
    ++k;
  }
  const SessionMetrics m = compute_metrics(r);
  EXPECT_EQ(m.switch_count, 4);
  EXPECT_DOUBLE_EQ(m.switches_per_hour, 4.0);
}

TEST(Metrics, ZeroPlayTimeIsSafe) {
  SessionResult r;
  r.chunk_duration_s = 4.0;
  r.played_s = 0.0;
  const SessionMetrics m = compute_metrics(r);
  EXPECT_DOUBLE_EQ(m.rebuffers_per_hour, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_rate_bps, 0.0);
  EXPECT_DOUBLE_EQ(m.switches_per_hour, 0.0);
}

}  // namespace
}  // namespace bba::sim
