// The bba.alerts.v1 artifact model + strict parser, shared by the
// bba_obs CLI (tools/bba_obs_cli.cpp) and its tests
// (tests/test_obs_cli.cpp).
//
// The artifact is this repo's own machine-written JSONL (obs/monitor.cpp):
// one header line, the alert lines in fold order, one summary trailer.
// Like tools/obs_artifact.hpp, the parser is a strict cursor scanner for
// exactly the writer's member order -- tools/trace_check.py --alerts
// enforces the same shape in CI -- so anything else fails with a
// position-anchored diagnostic instead of being guessed at.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace bba::tools {

/// One fired alert. `dir` is empty for kind "slo"; the detail fields are
/// meaningful only for their kind (ewma: center/band, cusum:
/// z/sum/threshold, slo: threshold/streak).
struct AlertData {
  unsigned long long seq = 0;
  std::string kind;    ///< "ewma" | "cusum" | "slo"
  std::string metric;  ///< monitor metric or SLO metric name
  std::size_t day = 0, window = 0, group = 0;
  std::string dir;  ///< "up" | "down"; empty for slo
  double value = 0.0;
  double center = 0.0, band = 0.0;             // ewma
  double z = 0.0, sum = 0.0;                   // cusum
  double threshold = 0.0;                      // cusum + slo
  unsigned long long streak = 0;               // slo
};

struct AlertsArtifact {
  unsigned long long seed = 0;
  std::size_t days = 0, windows = 0;
  std::vector<std::string> groups;
  // The pinned detector spec, header member order.
  unsigned long long warmup = 0, slo_rebuffer_windows = 0,
                     slo_join_windows = 0, top_k = 0;
  double ewma_alpha = 0.0, ewma_k = 0.0, cusum_k = 0.0, cusum_h = 0.0,
         sd_floor = 0.0, slo_rebuffer_ratio = 0.0, slo_join_s = 0.0;
  bool capture = false;
  std::vector<AlertData> alerts;  ///< fold (= seq) order
  unsigned long long summary_cells = 0, summary_alerts = 0;
};

/// Strict cursor scanner (the obs_artifact.hpp Scanner plus a double
/// field, since alert values are reals).
class AlertsScanner {
 public:
  explicit AlertsScanner(const std::string& text)
      : p_(text.c_str()), end_(p_ + text.size()) {}

  bool lit(const char* s) {
    ws();
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) < n ||
        std::memcmp(p_, s, n) != 0) {
      return fail(s);
    }
    p_ += n;
    return true;
  }
  bool u64(unsigned long long* out) {
    ws();
    if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return fail("unsigned integer");
    }
    *out = 0;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
      *out = *out * 10 + static_cast<unsigned long long>(*p_ - '0');
      ++p_;
    }
    return true;
  }
  bool f64(double* out) {
    ws();
    char* parse_end = nullptr;
    *out = std::strtod(p_, &parse_end);
    if (parse_end == p_) return fail("number");
    p_ = parse_end;
    return true;
  }
  bool quoted(std::string* out) {
    if (!lit("\"")) return false;
    out->clear();
    while (p_ < end_ && *p_ != '"') *out += *p_++;
    if (p_ >= end_) return fail("closing quote");
    ++p_;
    return true;
  }
  bool peek(char c) {
    ws();
    return p_ < end_ && *p_ == c;
  }
  bool at_end() {
    ws();
    return p_ >= end_;
  }
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\r' ||
                         *p_ == '\t')) {
      ++p_;
    }
  }
  bool fail(const char* expected) {
    if (error_.empty()) {
      error_ = std::string("expected '") + expected + "' near: " +
               std::string(p_, std::min<std::size_t>(
                                   24, static_cast<std::size_t>(end_ - p_)));
    }
    return false;
  }

  const char* p_;
  const char* end_;
  std::string error_;
};

inline bool parse_alerts(const std::string& text, const std::string& path,
                         AlertsArtifact* out, std::string* error) {
  AlertsScanner s(text);
  unsigned long long days = 0, windows = 0;
  bool ok = s.lit("{\"schema\":\"bba.alerts.v1\",\"seed\":") &&
            s.u64(&out->seed) && s.lit(",\"days\":") && s.u64(&days) &&
            s.lit(",\"windows_per_day\":") && s.u64(&windows) &&
            s.lit(",\"groups\":[");
  out->days = static_cast<std::size_t>(days);
  out->windows = static_cast<std::size_t>(windows);
  while (ok && !s.peek(']')) {
    if (!out->groups.empty()) ok = s.lit(",");
    std::string name;
    ok = ok && s.quoted(&name);
    if (ok) out->groups.push_back(name);
  }
  ok = ok && s.lit("],\"spec\":{\"warmup\":") && s.u64(&out->warmup) &&
       s.lit(",\"ewma_alpha\":") && s.f64(&out->ewma_alpha) &&
       s.lit(",\"ewma_k\":") && s.f64(&out->ewma_k) &&
       s.lit(",\"cusum_k\":") && s.f64(&out->cusum_k) &&
       s.lit(",\"cusum_h\":") && s.f64(&out->cusum_h) &&
       s.lit(",\"sd_floor\":") && s.f64(&out->sd_floor) &&
       s.lit(",\"slo_rebuffer_ratio\":") && s.f64(&out->slo_rebuffer_ratio) &&
       s.lit(",\"slo_rebuffer_windows\":") &&
       s.u64(&out->slo_rebuffer_windows) && s.lit(",\"slo_join_s\":") &&
       s.f64(&out->slo_join_s) && s.lit(",\"slo_join_windows\":") &&
       s.u64(&out->slo_join_windows) && s.lit(",\"top_k\":") &&
       s.u64(&out->top_k);
  if (ok) {
    if (s.lit(",\"capture\":true}}")) {
      out->capture = true;
    } else {
      ok = s.lit(",\"capture\":false}}");
      out->capture = false;
    }
  }
  // Alert lines in fold order, closed by the summary trailer.
  bool have_summary = false;
  while (ok && !s.at_end()) {
    if (s.peek('{')) {
      // Disambiguate alert vs summary by the shared "{"ev":" prefix.
      if (!s.lit("{\"ev\":\"")) {
        ok = false;
        break;
      }
    }
    if (s.lit("alert\",\"seq\":")) {
      AlertData a;
      unsigned long long day = 0, window = 0, group = 0;
      std::string group_name;
      ok = s.u64(&a.seq) && s.lit(",\"kind\":") && s.quoted(&a.kind) &&
           s.lit(",\"metric\":") && s.quoted(&a.metric) &&
           s.lit(",\"day\":") && s.u64(&day) && s.lit(",\"window\":") &&
           s.u64(&window) && s.lit(",\"group\":") && s.u64(&group) &&
           s.lit(",\"group_name\":") && s.quoted(&group_name);
      a.day = static_cast<std::size_t>(day);
      a.window = static_cast<std::size_t>(window);
      a.group = static_cast<std::size_t>(group);
      if (ok && a.kind != "slo") {
        ok = s.lit(",\"dir\":") && s.quoted(&a.dir);
      }
      ok = ok && s.lit(",\"value\":") && s.f64(&a.value);
      if (ok && a.kind == "ewma") {
        ok = s.lit(",\"center\":") && s.f64(&a.center) &&
             s.lit(",\"band\":") && s.f64(&a.band) && s.lit("}");
      } else if (ok && a.kind == "cusum") {
        ok = s.lit(",\"z\":") && s.f64(&a.z) && s.lit(",\"sum\":") &&
             s.f64(&a.sum) && s.lit(",\"threshold\":") &&
             s.f64(&a.threshold) && s.lit("}");
      } else if (ok && a.kind == "slo") {
        ok = s.lit(",\"threshold\":") && s.f64(&a.threshold) &&
             s.lit(",\"streak\":") && s.u64(&a.streak) && s.lit("}");
      } else if (ok) {
        *error = path + ": unknown alert kind \"" + a.kind + "\"";
        return false;
      }
      if (ok && (a.day >= out->days || a.window >= out->windows ||
                 a.group >= out->groups.size())) {
        *error = path + ": alert indices out of range";
        return false;
      }
      if (ok && a.seq != out->alerts.size()) {
        *error = path + ": alert seq out of fold order";
        return false;
      }
      if (ok && group_name != out->groups[a.group]) {
        *error = path + ": alert group_name does not match its group index";
        return false;
      }
      if (ok) out->alerts.push_back(std::move(a));
    } else if (s.lit("summary\",\"cells\":")) {
      ok = s.u64(&out->summary_cells) && s.lit(",\"alerts\":") &&
           s.u64(&out->summary_alerts) && s.lit("}");
      have_summary = ok;
      break;
    } else {
      ok = false;
    }
  }
  if (ok && !have_summary) {
    *error = path + ": missing summary trailer (truncated artifact?)";
    return false;
  }
  if (ok && !s.at_end()) {
    *error = path + ": trailing data after the summary line";
    return false;
  }
  if (ok && out->summary_alerts != out->alerts.size()) {
    *error = path + ": summary alert count does not match the alert lines";
    return false;
  }
  if (!ok) {
    *error = path + ": " + (s.error().empty() ? "parse error" : s.error());
    return false;
  }
  return true;
}

inline bool load_alerts(const std::string& path, AlertsArtifact* out,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "could not read " + path;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_alerts(buf.str(), path, out, error);
}

}  // namespace bba::tools
