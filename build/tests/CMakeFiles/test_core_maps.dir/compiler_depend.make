# Empty compiler generated dependencies file for test_core_maps.
# This may be replaced when dependencies are built.
