# Empty dependencies file for seek_behavior.
# This may be replaced when dependencies are built.
