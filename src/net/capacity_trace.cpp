#include "net/capacity_trace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace bba::net {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

CapacityTrace::CapacityTrace(std::vector<Segment> segments, bool loop) {
  assign(segments, loop);
}

void CapacityTrace::assign(std::vector<Segment>& segments, bool loop) {
  BBA_ASSERT(!segments.empty(), "CapacityTrace requires segments");
  segments_.swap(segments);
  loop_ = loop;
  time_prefix_.clear();
  bits_prefix_.clear();
  time_prefix_.reserve(segments_.size() + 1);
  bits_prefix_.reserve(segments_.size() + 1);
  time_prefix_.push_back(0.0);
  bits_prefix_.push_back(0.0);
  for (const auto& seg : segments_) {
    BBA_ASSERT(seg.duration_s > 0.0, "segment duration must be > 0");
    BBA_ASSERT(seg.rate_bps >= 0.0, "segment rate must be >= 0");
    time_prefix_.push_back(time_prefix_.back() + seg.duration_s);
    bits_prefix_.push_back(bits_prefix_.back() +
                           seg.rate_bps * seg.duration_s);
  }
  cycle_s_ = time_prefix_.back();
  cycle_bits_ = bits_prefix_.back();
}

CapacityTrace CapacityTrace::constant(double rate_bps) {
  return CapacityTrace({Segment{1.0, rate_bps}}, /*loop=*/true);
}

std::size_t CapacityTrace::segment_index_at(double t_s) const {
  // Last prefix <= t: upper_bound finds the first prefix > t. t == cycle_s_
  // (and only it, given t <= cycle_s_) lands past the last segment and is
  // clamped onto it.
  const auto it =
      std::upper_bound(time_prefix_.begin(), time_prefix_.end(), t_s);
  const auto idx = static_cast<std::size_t>(
      std::distance(time_prefix_.begin(), it)) - 1;
  return std::min(idx, segments_.size() - 1);
}

double CapacityTrace::rate_at_bps(double t_s) const {
  BBA_ASSERT(t_s >= 0.0, "time must be >= 0");
  if (t_s >= cycle_s_) {
    if (!loop_) return 0.0;
    t_s = std::fmod(t_s, cycle_s_);
  }
  return segments_[segment_index_at(t_s)].rate_bps;
}

double CapacityTrace::bits_prefix(double t_s) const {
  t_s = std::clamp(t_s, 0.0, cycle_s_);
  const std::size_t idx = segment_index_at(t_s);
  return bits_prefix_[idx] +
         segments_[idx].rate_bps * (t_s - time_prefix_[idx]);
}

double CapacityTrace::bits_between(double t0_s, double t1_s) const {
  BBA_ASSERT(t0_s >= 0.0 && t1_s >= t0_s, "require 0 <= t0 <= t1");
  if (!loop_) {
    return bits_prefix(std::min(t1_s, cycle_s_)) -
           bits_prefix(std::min(t0_s, cycle_s_));
  }
  auto bits_to = [this](double t) {
    const double cycles = std::floor(t / cycle_s_);
    return cycles * cycle_bits_ + bits_prefix(t - cycles * cycle_s_);
  };
  return bits_to(t1_s) - bits_to(t0_s);
}

double CapacityTrace::average_bps(double t0_s, double t1_s) const {
  if (t1_s <= t0_s) return 0.0;
  return bits_between(t0_s, t1_s) / (t1_s - t0_s);
}

double CapacityTrace::finish_time_s(double start_s, double bits) const {
  BBA_ASSERT(start_s >= 0.0, "start time must be >= 0");
  BBA_ASSERT(bits >= 0.0, "bits must be >= 0");
  if (bits == 0.0) return start_s;

  // Position within the cycle (or past the end for non-looping traces).
  double cycles_done = 0.0;
  double pos = start_s;
  if (loop_ && pos >= cycle_s_) {
    cycles_done = std::floor(pos / cycle_s_);
    pos -= cycles_done * cycle_s_;
  }
  if (!loop_ && pos >= cycle_s_) return kInf;

  double remaining = bits;
  // Finish the partial cycle from `pos`.
  {
    const double avail = cycle_bits_ - bits_prefix(pos);
    if (avail < remaining) {
      if (!loop_) return kInf;
      remaining -= avail;
      cycles_done += 1.0;
      pos = 0.0;
      // Skip whole cycles.
      if (cycle_bits_ <= 0.0) return kInf;  // permanent outage
      const double whole = std::floor(remaining / cycle_bits_);
      // Guard the exact-multiple case: keep at least a hair of work for the
      // in-cycle walk below.
      if (whole > 0.0 && whole * cycle_bits_ < remaining) {
        cycles_done += whole;
        remaining -= whole * cycle_bits_;
      } else if (whole > 0.0) {
        cycles_done += whole - 1.0;
        remaining -= (whole - 1.0) * cycle_bits_;
      }
    }
  }

  // Walk segments inside the current cycle until `remaining` is delivered.
  // `pos` is within [0, cycle_s_).
  std::size_t idx = segment_index_at(pos);
  double t = pos;
  while (true) {
    const Segment& seg = segments_[idx];
    const double seg_end = time_prefix_[idx + 1];
    const double span = seg_end - t;
    const double avail = seg.rate_bps * span;
    if (avail >= remaining && seg.rate_bps > 0.0) {
      t += remaining / seg.rate_bps;
      return cycles_done * cycle_s_ + t;
    }
    remaining -= avail;
    t = seg_end;
    ++idx;
    if (idx == segments_.size()) {
      if (!loop_) return kInf;
      idx = 0;
      t = 0.0;
      cycles_done += 1.0;
      if (cycle_bits_ <= 0.0) return kInf;
    }
  }
}

double CapacityTrace::min_rate_bps() const {
  double m = segments_.front().rate_bps;
  for (const auto& s : segments_) m = std::min(m, s.rate_bps);
  return m;
}

double CapacityTrace::max_rate_bps() const {
  double m = segments_.front().rate_bps;
  for (const auto& s : segments_) m = std::max(m, s.rate_bps);
  return m;
}

}  // namespace bba::net
