#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <new>

#include "util/assert.hpp"

namespace bba::obs {

namespace detail {
constinit thread_local LocalSlot* tl_metrics_slot = nullptr;
}  // namespace detail

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kSessions: return "sessions";
    case Counter::kSessionsAbandoned: return "sessions_abandoned";
    case Counter::kChunksDownloaded: return "chunks_downloaded";
    case Counter::kRebuffers: return "rebuffers";
    case Counter::kRateSwitches: return "rate_switches";
    case Counter::kOffPeriods: return "off_periods";
    case Counter::kReservoirMemoHits: return "reservoir_memo_hits";
    case Counter::kReservoirMemoBuilds: return "reservoir_memo_builds";
    case Counter::kCursorQueries: return "cursor_queries";
    case Counter::kCursorRewinds: return "cursor_rewinds";
    case Counter::kPoolLoops: return "pool_loops";
    case Counter::kPoolChunksClaimed: return "pool_chunks_claimed";
    case Counter::kSeqBatches: return "seq_batches";
    case Counter::kSeqSessions: return "seq_sessions";
    case Counter::kSeqSessionsSaved: return "seq_sessions_saved";
    case Counter::kCount: break;
  }
  return "unknown";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::kDownloadSeconds: return "download_seconds";
    case Hist::kStallSeconds: return "stall_seconds";
    case Hist::kOffWaitSeconds: return "off_wait_seconds";
    case Hist::kExecutorBacklog: return "executor_backlog";
    case Hist::kCount: break;
  }
  return "unknown";
}

double HistSlot::bucket_edge(int i) {
  return std::ldexp(1.0, i - kBucketBias);
}

double MetricsSnapshot::HistValues::percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1) + 0.5);
  std::uint64_t cum = 0;
  for (int b = 0; b < HistSlot::kBuckets; ++b) {
    cum += buckets[b];
    if (rank < cum) return HistSlot::bucket_edge(b);
  }
  return HistSlot::bucket_edge(HistSlot::kBuckets - 1);
}

MetricsRegistry::MetricsRegistry(std::size_t slots)
    : slots_(nullptr), num_slots_(slots == 0 ? 1 : slots) {
  slots_ = new Slot[num_slots_]();
}

MetricsRegistry::~MetricsRegistry() { delete[] slots_; }

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (std::size_t s = 0; s < num_slots_; ++s) {
    const Slot& slot = slots_[s];
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      snap.counters[c] += slot.counters[c].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kNumHists; ++h) {
      const HistSlot& hs = slot.hists[h];
      auto& out = snap.hists[h];
      for (int b = 0; b < HistSlot::kBuckets; ++b) {
        out.buckets[b] += hs.buckets[b].load(std::memory_order_relaxed);
      }
      out.count += hs.count.load(std::memory_order_relaxed);
      out.sum += static_cast<double>(
                     hs.sum_micro.load(std::memory_order_relaxed)) *
                 1e-6;
    }
  }
  return snap;
}

std::string MetricsSnapshot::to_json(const std::string& extra_json) const {
  std::string out = "{\"counters\":{";
  char buf[160];
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    std::snprintf(buf, sizeof buf, "%s\"%s\":%llu", c == 0 ? "" : ",",
                  counter_name(static_cast<Counter>(c)),
                  static_cast<unsigned long long>(counters[c]));
    out += buf;
  }
  out += "},\"histograms\":{";
  for (std::size_t h = 0; h < kNumHists; ++h) {
    const HistValues& hv = hists[h];
    std::snprintf(buf, sizeof buf, "%s\"%s\":{\"count\":%llu,\"sum\":%.6f,",
                  h == 0 ? "" : ",", hist_name(static_cast<Hist>(h)),
                  static_cast<unsigned long long>(hv.count), hv.sum);
    out += buf;
    out += "\"buckets\":[";
    bool first = true;
    for (int b = 0; b < HistSlot::kBuckets; ++b) {
      if (hv.buckets[b] == 0) continue;
      std::snprintf(buf, sizeof buf, "%s[%.9g,%llu]", first ? "" : ",",
                    HistSlot::bucket_edge(b),
                    static_cast<unsigned long long>(hv.buckets[b]));
      out += buf;
      first = false;
    }
    out += "]}";
  }
  out += "}";
  if (!extra_json.empty()) {
    out += ",";
    out += extra_json;
  }
  out += "}";
  return out;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  char buf[160];
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    if (counters[c] == 0) continue;
    std::snprintf(buf, sizeof buf, "%-24s %llu\n",
                  counter_name(static_cast<Counter>(c)),
                  static_cast<unsigned long long>(counters[c]));
    out += buf;
  }
  for (std::size_t h = 0; h < kNumHists; ++h) {
    const HistValues& hv = hists[h];
    if (hv.count == 0) continue;
    std::snprintf(buf, sizeof buf,
                  "%-24s count=%llu mean=%.6g p50=%.3g p90=%.3g p99=%.3g\n",
                  hist_name(static_cast<Hist>(h)),
                  static_cast<unsigned long long>(hv.count),
                  hv.sum / static_cast<double>(hv.count),
                  hv.percentile(0.50), hv.percentile(0.90),
                  hv.percentile(0.99));
    out += buf;
  }
  return out;
}

}  // namespace bba::obs
