// Observability wiring for CLIs and benches.
//
// Every binary that wants the shared flags (--trace-out, --trace-sample,
// --metrics-out, --profile-out) or the BBA_TRACE / BBA_TRACE_SAMPLE /
// BBA_METRICS / BBA_PROFILE environment variables goes through ObsOptions;
// an ObsScope then turns the options into an installed obs::Observability
// for its lifetime and writes the output files on destruction. With no
// option set, ObsScope installs nothing and costs nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/obs.hpp"

namespace bba::obs {

/// Parsed observability options. Empty paths = that instrument disabled.
struct ObsOptions {
  std::string trace_out;          ///< session trace output path
  std::string trace_format = "jsonl";  ///< "jsonl" or "btrace"
  std::uint64_t trace_sample = 64;  ///< 1-in-N sampling (0 = anomalies only)
  double anomaly_rebuffer_s = 30.0;
  std::string metrics_out;   ///< metrics snapshot JSON path
  std::string profile_out;   ///< Chrome trace-event JSON path
  std::string timeline_out;  ///< fleet timeline artifact JSON path
  std::string alerts_out;    ///< health monitor alerts artifact path
  std::string alert_spec;    ///< detector overrides, "key=val,key=val"
  /// Reopen trace_out for a checkpoint resume (TraceConfig::resume)
  /// instead of truncating it. Set by the CLIs when --resume is given;
  /// exp::run_ab_test_checkpointed then restores the collector state
  /// before any session is written.
  bool trace_resume = false;
  // Any of the three JSON outputs accepts "-": the exact file bytes go to
  // stdout and the notice line to stderr.

  /// True when any instrument is requested. The profiler and metrics
  /// registry also come up when only tracing is on (trace stats ride the
  /// metrics snapshot), but files are written only for requested outputs.
  bool any() const {
    return !trace_out.empty() || !metrics_out.empty() ||
           !profile_out.empty() || !timeline_out.empty() ||
           !alerts_out.empty();
  }

  /// Environment defaults: BBA_TRACE, BBA_TRACE_SAMPLE, BBA_METRICS,
  /// BBA_PROFILE, BBA_TIMELINE, BBA_ALERTS, BBA_ALERT_SPEC. Unset
  /// variables leave the defaults above.
  static ObsOptions from_env();

  /// CLI hook: if argv[i] is one of the shared observability flags,
  /// consumes it (advancing `i` over its value) and returns true.
  /// Call from an argument loop before the unknown-argument fallback.
  bool consume_arg(int argc, char** argv, int& i);

  /// The usage lines for the shared flags, for CLI help text.
  static const char* usage();
};

/// RAII: builds the instruments, installs them globally, binds the calling
/// thread to metrics slot 0 (so single-session tools count too), and on
/// destruction uninstalls and writes every requested output file.
class ObsScope {
 public:
  /// `threads_hint` sizes the per-slot shards (0 = hardware concurrency);
  /// pass the harness's resolved thread count when known.
  explicit ObsScope(const ObsOptions& opts, std::size_t threads_hint = 0);
  ~ObsScope();

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  /// False when an output file could not be opened (reported on stderr).
  bool ok() const { return ok_; }

  /// True when instruments are installed.
  bool active() const { return handle_ != nullptr; }

  Observability* handle() { return handle_.get(); }

 private:
  ObsOptions opts_;
  std::unique_ptr<Observability> handle_;
  std::unique_ptr<SlotBinding> main_binding_;
  bool ok_ = true;
};

}  // namespace bba::obs
