// Plot-ready CSV export of A/B results.
//
// Each figure bench prints human-readable rows; this writes the same data
// as machine-readable CSV (one row per two-hour window, one column per
// group, plus per-day values for error bars) so the paper's plots can be
// regenerated with any plotting tool.
#pragma once

#include <string>

#include "exp/abtest.hpp"
#include "exp/report.hpp"

namespace bba::exp {

/// Writes `metric` per (window, group): columns are
/// window,peak,<group>,... using day-merged values. Returns false on I/O
/// failure.
bool dump_metric_csv(const std::string& path, const AbTestResult& result,
                     const MetricDef& metric);

/// Writes per-day values for error bars: columns are
/// window,day,<group>,... Returns false on I/O failure.
bool dump_metric_per_day_csv(const std::string& path,
                             const AbTestResult& result,
                             const MetricDef& metric);

}  // namespace bba::exp
