// End-to-end property tests across the whole stack: the Sec. 3 theorems
// driven through the real player on randomized traces and titles
// (parameterized sweeps), plus the paper's headline scenarios.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "abr/baselines.hpp"
#include "abr/control.hpp"
#include "core/bba0.hpp"
#include "core/bba1.hpp"
#include "core/bba2.hpp"
#include "core/bba_others.hpp"
#include "media/video.hpp"
#include "net/trace_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/player.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace bba {
namespace {

using util::kbps;
using util::mbps;

std::unique_ptr<abr::RateAdaptation> make_algorithm(const std::string& name) {
  if (name == "bba0") return std::make_unique<core::Bba0>();
  if (name == "bba1") return std::make_unique<core::Bba1>();
  if (name == "bba2") return std::make_unique<core::Bba2>();
  if (name == "bba-others") return std::make_unique<core::BbaOthers>();
  if (name == "control") return std::make_unique<abr::ControlAbr>();
  if (name == "rmin") return std::make_unique<abr::RMinAlways>();
  ADD_FAILURE() << "unknown algorithm " << name;
  return std::make_unique<abr::RMinAlways>();
}

/// Random capacity trace whose minimum never falls below `floor_bps`.
net::CapacityTrace random_trace_above(double floor_bps, std::uint64_t seed) {
  util::Rng rng(seed);
  net::MarkovTraceConfig cfg;
  cfg.median_bps = rng.uniform(2.0, 12.0) * floor_bps;
  cfg.sigma_log = rng.uniform(0.3, 1.3);
  cfg.min_bps = floor_bps;
  cfg.mean_dwell_s = rng.uniform(5.0, 30.0);
  return net::make_markov_trace(cfg, rng);
}

// ---------------------------------------------------------------------------
// Theorem 1 (Sec. 3.1): no unnecessary rebuffering. With CBR content and
// C(t) >= R_min at all times, a buffer-based algorithm whose map pins to
// R_min near empty never rebuffers after startup.
// ---------------------------------------------------------------------------

class NoUnnecessaryRebuffer
    : public testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(NoUnnecessaryRebuffer, CbrNeverStalls) {
  const auto [name, seed] = GetParam();
  const media::Video video = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 900, 4.0);
  const net::CapacityTrace trace = random_trace_above(
      1.05 * video.ladder().rmin_bps(), static_cast<std::uint64_t>(seed));
  auto algorithm = make_algorithm(name);
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(45);
  const sim::SessionResult result =
      sim::simulate_session(video, trace, *algorithm, player);
  EXPECT_TRUE(result.rebuffers.empty())
      << name << " stalled on a trace with C(t) >= 1.05 R_min (seed "
      << seed << ")";
  EXPECT_FALSE(result.abandoned);
}

INSTANTIATE_TEST_SUITE_P(
    BufferBasedFamily, NoUnnecessaryRebuffer,
    testing::Combine(testing::Values("bba0", "bba1", "bba-others", "rmin"),
                     testing::Range(0, 12)),
    [](const testing::TestParamInfo<NoUnnecessaryRebuffer::ParamType>& info) {
      std::string name = std::get<0>(info.param) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// Under VBR the guarantee needs headroom for the worst chunk (max/avg
// ratio e): C(t) >= e * R_min suffices for the safe-area algorithms.
class NoUnnecessaryRebufferVbr
    : public testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(NoUnnecessaryRebufferVbr, VbrNeverStallsWithHeadroom) {
  const auto [name, seed] = GetParam();
  util::Rng vrng(static_cast<std::uint64_t>(seed) + 1000);
  const media::Video video = media::make_vbr_video(
      "vbr", media::EncodingLadder::netflix_2013(), 900, 4.0,
      media::VbrConfig{}, vrng);
  const double e = video.chunks().max_to_avg_ratio(0);
  const net::CapacityTrace trace = random_trace_above(
      1.05 * e * video.ladder().rmin_bps(),
      static_cast<std::uint64_t>(seed));
  auto algorithm = make_algorithm(name);
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(45);
  const sim::SessionResult result =
      sim::simulate_session(video, trace, *algorithm, player);
  EXPECT_TRUE(result.rebuffers.empty())
      << name << " stalled under VBR with C(t) >= 1.05 e R_min (seed "
      << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    BufferBasedFamily, NoUnnecessaryRebufferVbr,
    testing::Combine(testing::Values("bba0", "bba1", "bba-others", "rmin"),
                     testing::Range(0, 12)),
    [](const testing::TestParamInfo<NoUnnecessaryRebufferVbr::ParamType>&
           info) {
      std::string name = std::get<0>(info.param) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Theorem 2 (Sec. 3.1): average-rate maximization. With R_min < C(t) <
// R_max and enough time, the buffer-based algorithms deliver an average
// rate close to the average capacity.
// ---------------------------------------------------------------------------

class RateMaximization : public testing::TestWithParam<std::string> {};

TEST_P(RateMaximization, SteadyRateTracksConstantCapacity) {
  const std::string name = GetParam();
  const media::Video video = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 2000, 4.0);
  for (double capacity_kbps : {800.0, 1500.0, 2800.0, 4200.0}) {
    const net::CapacityTrace trace =
        net::CapacityTrace::constant(kbps(capacity_kbps));
    auto algorithm = make_algorithm(name);
    sim::PlayerConfig player;
    player.watch_duration_s = util::minutes(90);
    const sim::SessionMetrics m = sim::compute_metrics(
        sim::simulate_session(video, trace, *algorithm, player));
    // Steady-state delivered rate within [next rate below, capacity]:
    // quantization forbids exact equality.
    const auto& ladder = video.ladder();
    const double lower =
        ladder.rate_bps(ladder.down(ladder.highest_not_above(
            kbps(capacity_kbps))));
    EXPECT_GE(m.steady_rate_bps, lower * 0.98)
        << name << " at " << capacity_kbps;
    EXPECT_LE(m.steady_rate_bps, kbps(capacity_kbps) * 1.001)
        << name << " at " << capacity_kbps;
    EXPECT_EQ(m.rebuffer_count, 0) << name << " at " << capacity_kbps;
  }
}

INSTANTIATE_TEST_SUITE_P(BufferBasedFamily, RateMaximization,
                         testing::Values("bba0", "bba1", "bba2",
                                         "bba-others"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// ---------------------------------------------------------------------------
// The Fig. 4 case study as a regression test.
// ---------------------------------------------------------------------------

TEST(Fig4Scenario, BbaFamilyRidesOutTheDrop) {
  const media::Video video = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 900, 4.0);
  const net::CapacityTrace trace =
      net::make_step_trace(mbps(5), kbps(350), 25.0);
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(20);
  for (const char* name : {"bba0", "bba1", "bba2", "bba-others"}) {
    auto algorithm = make_algorithm(name);
    const sim::SessionResult result =
        sim::simulate_session(video, trace, *algorithm, player);
    EXPECT_TRUE(result.rebuffers.empty()) << name;
    EXPECT_NEAR(result.played_s, util::minutes(20), 1e-6) << name;
  }
}

TEST(Fig4Scenario, LegacyEstimatorClientStalls) {
  const media::Video video = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 900, 4.0);
  const net::CapacityTrace trace =
      net::make_step_trace(mbps(5), kbps(350), 25.0);
  abr::ControlConfig legacy;
  legacy.estimator_window = 8;
  legacy.f_at_empty = 0.5;
  legacy.last_sample_cap = 1e9;
  abr::ControlAbr control(legacy);
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(20);
  const sim::SessionResult result =
      sim::simulate_session(video, trace, control, player);
  EXPECT_GE(result.rebuffers.size(), 1u);
  double stall = 0.0;
  for (const auto& rb : result.rebuffers) stall += rb.duration_s;
  EXPECT_GE(stall, 20.0);
}

// ---------------------------------------------------------------------------
// Steady-state superiority (Fig. 18's mechanism): on a variable trace the
// buffer-based algorithm sustains a higher steady-state rate than the
// capacity-estimation Control.
// ---------------------------------------------------------------------------

TEST(SteadyState, BbaBeatsControlOnVariableTrace) {
  util::Rng rng(77);
  double bba_total = 0.0;
  double control_total = 0.0;
  for (int i = 0; i < 10; ++i) {
    net::MarkovTraceConfig cfg;
    cfg.median_bps = mbps(3);
    cfg.sigma_log = 1.0;
    cfg.min_bps = kbps(500);
    util::Rng trng = rng.fork(static_cast<unsigned>(i));
    const net::CapacityTrace trace = net::make_markov_trace(cfg, trng);
    util::Rng vrng = rng.fork(1000 + static_cast<unsigned>(i));
    const media::Video video = media::make_vbr_video(
        "vbr", media::EncodingLadder::netflix_2013(), 900, 4.0,
        media::VbrConfig{}, vrng);
    sim::PlayerConfig player;
    player.watch_duration_s = util::minutes(40);
    core::Bba2 bba;
    abr::ControlAbr control;
    bba_total += sim::compute_metrics(
                     sim::simulate_session(video, trace, bba, player))
                     .steady_rate_bps;
    control_total += sim::compute_metrics(
                         sim::simulate_session(video, trace, control, player))
                         .steady_rate_bps;
  }
  EXPECT_GT(bba_total, control_total);
}

// ---------------------------------------------------------------------------
// ON-OFF behaviour (Sec. 8): with the buffer full, BBA requests R_max, so
// the OFF pattern appears only when capacity exceeds R_max.
// ---------------------------------------------------------------------------

TEST(OnOff, BbaRequestsRmaxWhenBufferFull) {
  const media::Video video = media::make_cbr_video(
      "cbr", media::EncodingLadder::netflix_2013(), 900, 4.0);
  const net::CapacityTrace trace = net::CapacityTrace::constant(mbps(40));
  core::Bba0 bba;
  sim::PlayerConfig player;
  player.watch_duration_s = util::minutes(30);
  const sim::SessionResult result =
      sim::simulate_session(video, trace, bba, player);
  // Once in OFF mode, every request is for R_max.
  bool saw_off = false;
  for (const auto& c : result.chunks) {
    if (c.off_wait_s > 0.0) {
      saw_off = true;
      EXPECT_EQ(c.rate_index, video.ladder().max_index());
    }
  }
  EXPECT_TRUE(saw_off);
}

// ---------------------------------------------------------------------------
// Outage protection (Sec. 7.1): with protection, BBA-Others bridges
// repeated 25-35 s outages better than an unprotected BBA-1.
// ---------------------------------------------------------------------------

TEST(OutageProtection, ReducesStallsUnderOutages) {
  util::Rng rng(31);
  long long with_protection = 0;
  long long without_protection = 0;
  for (int i = 0; i < 8; ++i) {
    net::MarkovTraceConfig cfg;
    cfg.median_bps = mbps(4);
    cfg.sigma_log = 0.5;
    net::OutageConfig outages;
    outages.mean_interval_s = 240.0;
    util::Rng t1 = rng.fork(static_cast<unsigned>(i));
    const net::CapacityTrace trace =
        net::with_outages(net::make_markov_trace(cfg, t1), outages, t1);
    util::Rng vrng = rng.fork(500 + static_cast<unsigned>(i));
    const media::Video video = media::make_vbr_video(
        "vbr", media::EncodingLadder::netflix_2013(), 900, 4.0,
        media::VbrConfig{}, vrng);
    sim::PlayerConfig player;
    player.watch_duration_s = util::minutes(40);

    core::Bba1Config unprotected;
    unprotected.outage_protection = false;
    core::Bba1 plain(unprotected);
    core::BbaOthers guarded;
    without_protection +=
        sim::compute_metrics(
            sim::simulate_session(video, trace, plain, player))
            .rebuffer_count;
    with_protection +=
        sim::compute_metrics(
            sim::simulate_session(video, trace, guarded, player))
            .rebuffer_count;
  }
  EXPECT_LE(with_protection, without_protection);
}

// ---------------------------------------------------------------------------
// Determinism of a full experiment stack.
// ---------------------------------------------------------------------------

TEST(Determinism, FullSessionIsBitReproducible) {
  for (const char* name : {"bba0", "bba1", "bba2", "bba-others", "control"}) {
    util::Rng rng1(5);
    util::Rng rng2(5);
    net::MarkovTraceConfig cfg;
    const net::CapacityTrace t1 = net::make_markov_trace(cfg, rng1);
    const net::CapacityTrace t2 = net::make_markov_trace(cfg, rng2);
    const media::Video video = media::make_cbr_video(
        "cbr", media::EncodingLadder::netflix_2013(), 300, 4.0);
    auto a1 = make_algorithm(name);
    auto a2 = make_algorithm(name);
    const sim::SessionResult r1 = sim::simulate_session(video, t1, *a1);
    const sim::SessionResult r2 = sim::simulate_session(video, t2, *a2);
    ASSERT_EQ(r1.chunks.size(), r2.chunks.size()) << name;
    for (std::size_t i = 0; i < r1.chunks.size(); ++i) {
      EXPECT_EQ(r1.chunks[i].rate_index, r2.chunks[i].rate_index) << name;
      EXPECT_DOUBLE_EQ(r1.chunks[i].finish_s, r2.chunks[i].finish_s) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Rate-switch hysteresis: on a noisy but statistically stable trace, BBA-0
// switches less often than the Control (Fig. 9's mechanism).
// ---------------------------------------------------------------------------

TEST(Switching, Bba0SwitchesLessThanControl) {
  util::Rng rng(41);
  double bba_switches = 0.0;
  double control_switches = 0.0;
  for (int i = 0; i < 10; ++i) {
    net::MarkovTraceConfig cfg;
    cfg.median_bps = mbps(2.5);
    cfg.sigma_log = 0.7;
    util::Rng trng = rng.fork(static_cast<unsigned>(i));
    const net::CapacityTrace trace = net::make_markov_trace(cfg, trng);
    util::Rng vrng = rng.fork(100 + static_cast<unsigned>(i));
    const media::Video video = media::make_vbr_video(
        "vbr", media::EncodingLadder::netflix_2013(), 900, 4.0,
        media::VbrConfig{}, vrng);
    sim::PlayerConfig player;
    player.watch_duration_s = util::minutes(40);
    core::Bba0 bba;
    abr::ControlAbr control;
    bba_switches += static_cast<double>(
        sim::compute_metrics(sim::simulate_session(video, trace, bba, player))
            .switch_count);
    control_switches += static_cast<double>(
        sim::compute_metrics(
            sim::simulate_session(video, trace, control, player))
            .switch_count);
  }
  EXPECT_LT(bba_switches, control_switches);
}

}  // namespace
}  // namespace bba
