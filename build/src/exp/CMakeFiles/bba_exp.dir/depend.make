# Empty dependencies file for bba_exp.
# This may be replaced when dependencies are built.
