file(REMOVE_RECURSE
  "libbba_stats.a"
)
