// Figure-style reporting over A/B test results.
//
// The paper's evaluation figures are all of three shapes:
//   * absolute metric per two-hour window per group (Figs. 7a, 14a, 19a,
//     24a, 22);
//   * metric normalized to the Control group's window average (Figs. 7b,
//     9, 14b, 19b, 24b);
//   * video-rate delta vs Control in kb/s (Figs. 8, 15, 17, 18, 23).
// These helpers print each shape as aligned rows (with day-to-day standard
// deviation as the error bar) and expose scalar summaries for the benches'
// shape checks.
#pragma once

#include <functional>
#include <string>

#include "exp/abtest.hpp"
#include "stats/bootstrap.hpp"

namespace bba::exp {

/// A named accessor over a window cell.
struct MetricDef {
  std::string name;  ///< e.g. "rebuffers/playhour"
  std::function<double(const WindowMetrics&)> get;
};

MetricDef rebuffers_per_hour_metric();
MetricDef avg_rate_kbps_metric();
MetricDef startup_rate_kbps_metric();
MetricDef steady_rate_kbps_metric();
MetricDef switches_per_hour_metric();

/// Prints one row per window: the metric for every group (merged over
/// days) with +/- day-to-day standard deviation, and a "peak" marker on
/// the USA peak-viewing windows.
void print_absolute_by_window(const AbTestResult& result,
                              const MetricDef& metric);

/// Prints one row per window: each group's metric divided by
/// `baseline_group`'s metric in the same window (the paper's
/// "normalized to the average of Control in each two-hour period").
void print_normalized_by_window(const AbTestResult& result,
                                const MetricDef& metric,
                                const std::string& baseline_group);

/// Prints one row per window: baseline minus group, in the metric's units
/// (used with the rate metrics, matching the paper's "difference in the
/// delivered video rate" axes).
void print_delta_by_window(const AbTestResult& result,
                           const MetricDef& metric,
                           const std::string& baseline_group);

/// Play-hours-weighted mean over windows of group/baseline ratios.
/// `peak_only` restricts to the USA peak windows.
double mean_normalized(const AbTestResult& result, const MetricDef& metric,
                       const std::string& group,
                       const std::string& baseline_group, bool peak_only);

/// Play-hours-weighted mean over windows of (baseline - group).
double mean_delta(const AbTestResult& result, const MetricDef& metric,
                  const std::string& group, const std::string& baseline_group,
                  bool peak_only);

/// Bootstrap confidence interval for the group/baseline ratio of
/// play-hour-weighted totals, resampling (day, window) cells jointly.
/// Deterministic in `seed`.
stats::BootstrapCi normalized_ci(const AbTestResult& result,
                                 const MetricDef& metric,
                                 const std::string& group,
                                 const std::string& baseline_group,
                                 std::uint64_t seed = 7,
                                 double confidence = 0.95);

/// Simple PASS/FAIL shape-check line used by every bench harness; returns
/// `ok` so callers can aggregate an exit code.
bool shape_check(bool ok, const std::string& description);

}  // namespace bba::exp
