#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bba::runtime {

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(Loop& loop) {
  for (;;) {
    const std::size_t start =
        loop.next.fetch_add(loop.grain, std::memory_order_relaxed);
    if (start >= loop.end) return;
    if (loop.failed.load(std::memory_order_relaxed)) continue;  // drain
    const std::size_t stop = std::min(loop.end, start + loop.grain);
    try {
      for (std::size_t i = start; i < stop; ++i) (*loop.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(loop.error_mu);
      if (!loop.error) loop.error = std::current_exception();
      loop.failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Loop> loop;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      loop = loop_;
    }
    if (!loop) continue;  // loop already retired between notify and wake
    loop->in_flight.fetch_add(1, std::memory_order_relaxed);
    run_chunks(*loop);
    if (loop->in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
  BBA_ASSERT(body != nullptr, "parallel_for requires a body");
  if (end <= begin) return;
  const std::size_t count = end - begin;
  if (grain == 0) {
    // Aim for ~4 chunks per thread so dynamic scheduling can balance
    // uneven bodies without excessive cursor contention.
    grain = std::max<std::size_t>(1, count / (size() * 4));
  }
  // Run inline when there is nobody to share with or nothing to share.
  if (workers_.empty() || count <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->next.store(begin, std::memory_order_relaxed);
  loop->end = end;
  loop->grain = grain;
  loop->body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    loop_ = loop;
    ++generation_;
  }
  work_cv_.notify_all();

  run_chunks(*loop);  // the caller participates

  {
    // All indices are claimed once run_chunks returns; wait for workers
    // still executing their final chunk. Workers that wake later claim
    // nothing (the cursor is past `end`) and never touch `body`.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return loop->in_flight.load(std::memory_order_acquire) == 0;
    });
    loop_ = nullptr;
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace bba::runtime
