file(REMOVE_RECURSE
  "CMakeFiles/fig18_steady_state_rate.dir/fig18_steady_state_rate.cpp.o"
  "CMakeFiles/fig18_steady_state_rate.dir/fig18_steady_state_rate.cpp.o.d"
  "fig18_steady_state_rate"
  "fig18_steady_state_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_steady_state_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
