file(REMOVE_RECURSE
  "CMakeFiles/fig13_chunk_map.dir/fig13_chunk_map.cpp.o"
  "CMakeFiles/fig13_chunk_map.dir/fig13_chunk_map.cpp.o.d"
  "fig13_chunk_map"
  "fig13_chunk_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_chunk_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
