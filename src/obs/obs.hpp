// Process-wide observability handle.
//
// A single Observability object bundles the three optional instruments --
// metrics registry, profiler, session trace collector -- and is installed
// globally so deep call sites (the thread pool, the A/B harness) can reach
// them without threading pointers through hot-path signatures. Nothing is
// installed by default: `global()` returns nullptr and every
// instrumentation site reduces to one predictable branch.
//
// Ownership stays with the installer (normally obs::ObsScope in
// obs/setup.hpp): install(nullptr) before destroying the object.
#pragma once

#include <memory>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/profile.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace bba::obs {

/// The installed instruments; any subset may be null.
struct Observability {
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<Profiler> profiler;
  std::unique_ptr<TraceCollector> trace;
  /// Fleet timeline; harness folds record into it from the sequential
  /// fold only (no synchronization -- see timeline.hpp).
  std::unique_ptr<TimelineAggregator> timeline;
  /// Fleet health monitor; same single-writer fold discipline as the
  /// timeline (see monitor.hpp).
  std::unique_ptr<HealthMonitor> monitor;
};

/// The currently installed handle, or nullptr (the default).
Observability* global();

/// Installs `o` (nullptr uninstalls). Not synchronized against concurrent
/// harness runs: install before spawning work, uninstall after it drains.
void install(Observability* o);

}  // namespace bba::obs
