file(REMOVE_RECURSE
  "CMakeFiles/test_sim_seek.dir/test_sim_seek.cpp.o"
  "CMakeFiles/test_sim_seek.dir/test_sim_seek.cpp.o.d"
  "test_sim_seek"
  "test_sim_seek.pdb"
  "test_sim_seek[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_seek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
