# Empty compiler generated dependencies file for fairness_shared_link.
# This may be replaced when dependencies are built.
