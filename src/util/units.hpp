// Unit helpers and conventions.
//
// All quantities in this library are `double`s with unit-suffixed names:
//   *_s    -- seconds
//   *_bits -- bits
//   *_bps  -- bits per second (nominal video rates, capacities, throughputs)
// These helpers keep literal conversions readable and grep-able.
#pragma once

namespace bba::util {

/// Kilobits per second -> bits per second.
constexpr double kbps(double v) { return v * 1e3; }

/// Megabits per second -> bits per second.
constexpr double mbps(double v) { return v * 1e6; }

/// Bits per second -> kilobits per second (for reporting).
constexpr double to_kbps(double bps) { return bps / 1e3; }

/// Bits per second -> megabits per second (for reporting).
constexpr double to_mbps(double bps) { return bps / 1e6; }

/// Bits -> megabytes (for reporting chunk sizes as in the paper's Fig. 10).
constexpr double bits_to_megabytes(double bits) { return bits / 8.0 / 1e6; }

/// Minutes -> seconds.
constexpr double minutes(double v) { return v * 60.0; }

/// Hours -> seconds.
constexpr double hours(double v) { return v * 3600.0; }

/// Seconds -> hours (for per-playhour metrics).
constexpr double to_hours(double s) { return s / 3600.0; }

}  // namespace bba::util
