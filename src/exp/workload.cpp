#include "exp/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bba::exp {

SessionSpec sample_session(const media::VideoLibrary& library,
                           const WorkloadConfig& cfg, util::Rng& rng) {
  BBA_ASSERT(library.size() > 0, "empty video library");
  BBA_ASSERT(cfg.median_watch_s > 0.0 && cfg.min_watch_s > 0.0,
             "invalid workload config");
  SessionSpec spec;
  spec.video_index = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(library.size()) - 1));
  const double video_len = library.at(spec.video_index).duration_s();
  const double raw =
      rng.lognormal(std::log(cfg.median_watch_s), cfg.sigma_log);
  spec.watch_duration_s =
      std::clamp(raw, std::min(cfg.min_watch_s, video_len), video_len);
  return spec;
}

SessionSpec session_for(const media::VideoLibrary& library,
                        const WorkloadConfig& cfg, const SessionKey& key) {
  util::Rng rng = session_rng(key, StreamClass::kWorkload);
  return sample_session(library, cfg, rng);
}

}  // namespace bba::exp
