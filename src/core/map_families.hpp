// Families of Sec.-3-compliant rate maps.
//
// The paper proves that ANY rate map that is continuous, strictly
// increasing between R_min and R_max, and pinned at both ends avoids
// unnecessary rebuffering and maximizes the average rate -- the linear
// ramp of BBA-0 is just the simplest choice. This header makes the design
// space first-class: shaped maps (linear / quadratic / logarithmic), a
// checker for the theorem's preconditions, and an ABR that runs
// Algorithm 1 over any shaped map.
#pragma once

#include <string>

#include "abr/abr.hpp"
#include "core/rate_map.hpp"

namespace bba::core {

/// How the map climbs across the cushion.
enum class MapShape {
  kLinear,       ///< BBA-0's ramp: even spacing in rate
  kQuadratic,    ///< conservative low in the cushion, steep near the top
  kLogarithmic,  ///< aggressive just above the reservoir, flat near the top
};

const char* map_shape_name(MapShape shape);

/// A reservoir/cushion map with a configurable ramp shape. Pinned at
/// (reservoir, R_min) and (reservoir + cushion, R_max) by construction.
class ShapedRateMap {
 public:
  /// Requires reservoir >= 0, cushion > 0, 0 < rmin < rmax.
  ShapedRateMap(MapShape shape, double reservoir_s, double cushion_s,
                double rmin_bps, double rmax_bps);

  /// f(B).
  double rate_at_bps(double buffer_s) const;

  MapShape shape() const { return shape_; }
  double reservoir_s() const { return reservoir_s_; }
  double cushion_s() const { return cushion_s_; }
  double upper_reservoir_start_s() const {
    return reservoir_s_ + cushion_s_;
  }
  double rmin_bps() const { return rmin_bps_; }
  double rmax_bps() const { return rmax_bps_; }

  /// Verifies the Sec. 3.1 criteria on a dense grid: pinned ends,
  /// monotone non-decreasing everywhere, strictly increasing across the
  /// cushion, and no jump larger than `continuity_tol` of the rate span
  /// between neighbouring grid points.
  bool satisfies_design_criteria(double grid_step_s = 0.1,
                                 double continuity_tol = 0.02) const;

 private:
  MapShape shape_;
  double reservoir_s_;
  double cushion_s_;
  double rmin_bps_;
  double rmax_bps_;
};

/// Algorithm 1 over a shaped map: the generalization the paper's theorem
/// licenses. With MapShape::kLinear and the BBA-0 geometry this is
/// exactly BBA-0.
class ShapedBba final : public abr::RateAdaptation {
 public:
  /// `reservoir_s`/`cushion_s` as in Bba0Config; rates come from the
  /// session's ladder at decision time.
  ShapedBba(MapShape shape, double reservoir_s = 90.0,
            double cushion_s = 126.0);

  std::size_t choose_rate(const abr::Observation& obs) override;
  std::string name() const override;

 private:
  MapShape shape_;
  double reservoir_s_;
  double cushion_s_;
};

}  // namespace bba::core
